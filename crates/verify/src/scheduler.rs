//! The deterministic-interleaving scheduler.
//!
//! A model is a closure that spawns threads through [`crate::thread::spawn`]
//! and synchronizes through the [`crate::sync`] shims. Only one model thread
//! runs at a time: every shim operation is a **yield point** where the
//! running thread hands a baton back to the controller, which picks the next
//! thread to run. The sequence of picks is a *schedule*; [`explore`]
//! enumerates schedules depth-first (optionally under a preemption bound)
//! and [`replay`] re-executes one schedule exactly — which is how a failure
//! printed by the checker is reproduced.
//!
//! The controller only ever schedules threads whose next operation is
//! *enabled* (a lock acquire is disabled while the lock is held, a join is
//! disabled until the target finishes), so blocked threads cost nothing and
//! a state where no thread is enabled is reported as a deadlock, schedule
//! attached.
//!
//! Exploration is stateless in the jargon sense: each schedule re-runs the
//! closure from scratch with fresh OS threads, so models must confine their
//! shared state to values created inside the closure (the shims allocate
//! object identities lazily, which keeps runs independent).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{self, Arc, Condvar, Mutex, MutexGuard};

/// Index of a model thread within one run (the root closure is thread 0;
/// spawned threads are numbered in spawn order, which is deterministic).
pub type Tid = usize;

/// Identity of a shim synchronization object (lazily assigned, process-wide
/// unique so objects outliving a run can never collide with fresh ones).
pub type Oid = u64;

static NEXT_OID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh object identity for a shim object.
pub(crate) fn alloc_oid() -> Oid {
    // ordering: Relaxed — the counter only needs uniqueness, not to order
    // any other memory access.
    NEXT_OID.fetch_add(1, Ordering::Relaxed)
}

/// The operation a model thread is about to perform at a yield point. The
/// controller uses it to decide enabledness; acquire effects are applied
/// when the thread is granted the baton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// First scheduling of a thread (its closure has not started yet).
    Start,
    /// Blocking exclusive acquire (mutex lock / rwlock write).
    Lock(Oid),
    /// Blocking shared acquire (rwlock read).
    Share(Oid),
    /// Non-blocking exclusive attempt; always enabled, may fail.
    TryLock(Oid),
    /// Non-blocking shared attempt; always enabled, may fail.
    TryShare(Oid),
    /// One atomic access (load/store/rmw).
    Atomic(Oid),
    /// Join on another model thread; enabled once it has finished.
    Join(Tid),
}

#[derive(Default, Clone, Copy)]
struct LockState {
    excl: Option<Tid>,
    shared: usize,
}

enum TState {
    /// Waiting for the baton with a declared next operation.
    Ready(Op),
    /// Currently holds the baton.
    Running,
    /// Closure returned (or the run is unwinding).
    Finished,
}

struct State {
    threads: Vec<TState>,
    locks: HashMap<Oid, LockState>,
    /// `Some(t)` while thread `t` holds the baton; `None` hands control to
    /// the controller.
    baton: Option<Tid>,
    /// Set when the run is being torn down; parked threads unwind out.
    aborting: bool,
    /// First invariant violation (panic message) observed this run.
    failure: Option<String>,
}

pub(crate) struct Shared {
    mx: Mutex<State>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Shared>, Tid)>> = const { RefCell::new(None) };
}

/// The current thread's model context, if it is a managed model thread.
fn current() -> Option<(Arc<Shared>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread belongs to an active model run. Shims use
/// this to fall back to plain std behavior outside the checker.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Payload used to unwind parked threads when a run is torn down.
struct AbortRun;

fn lock_state(sh: &Shared) -> MutexGuard<'_, State> {
    sh.mx.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_state<'a>(sh: &'a Shared, g: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    sh.cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// Yield point: declare the next operation, hand the baton to the
/// controller, and block until granted. On grant, the effects of blocking
/// acquires are applied (the controller has already verified enabledness).
/// No-op outside a model run.
pub(crate) fn acquire(op: Op) {
    let Some((sh, me)) = current() else { return };
    let mut st = lock_state(&sh);
    st.threads[me] = TState::Ready(op);
    st.baton = None;
    sh.cv.notify_all();
    loop {
        if st.aborting {
            drop(st);
            panic::panic_any(AbortRun);
        }
        if st.baton == Some(me) {
            break;
        }
        st = wait_state(&sh, st);
    }
    st.threads[me] = TState::Running;
    match op {
        Op::Lock(o) => {
            let l = st.locks.entry(o).or_default();
            debug_assert!(l.excl.is_none() && l.shared == 0, "granted a held lock");
            l.excl = Some(me);
        }
        Op::Share(o) => {
            let l = st.locks.entry(o).or_default();
            debug_assert!(l.excl.is_none(), "granted a read on a write-held lock");
            l.shared += 1;
        }
        _ => {}
    }
}

/// After `acquire(Op::TryLock(oid))`: takes the lock exclusively if free.
pub(crate) fn try_take_excl(oid: Oid) -> bool {
    let Some((sh, me)) = current() else {
        return true;
    };
    let mut st = lock_state(&sh);
    let l = st.locks.entry(oid).or_default();
    if l.excl.is_none() && l.shared == 0 {
        l.excl = Some(me);
        true
    } else {
        false
    }
}

/// After `acquire(Op::TryShare(oid))`: takes a shared slot if no writer.
pub(crate) fn try_take_shared(oid: Oid) -> bool {
    let Some((sh, _)) = current() else {
        return true;
    };
    let mut st = lock_state(&sh);
    let l = st.locks.entry(oid).or_default();
    if l.excl.is_none() {
        l.shared += 1;
        true
    } else {
        false
    }
}

/// Releases an exclusive hold (guard drop). No-op outside a model run.
pub(crate) fn release_excl(oid: Oid) {
    let Some((sh, _)) = current() else { return };
    let mut st = lock_state(&sh);
    if let Some(l) = st.locks.get_mut(&oid) {
        l.excl = None;
    }
}

/// Releases a shared hold (guard drop). No-op outside a model run.
pub(crate) fn release_shared(oid: Oid) {
    let Some((sh, _)) = current() else { return };
    let mut st = lock_state(&sh);
    if let Some(l) = st.locks.get_mut(&oid) {
        l.shared = l.shared.saturating_sub(1);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with a non-string payload".to_string()
    }
}

/// Registers a spawned model thread and starts its OS thread (parked until
/// first scheduled). Returns the new thread's id. Must be called from a
/// managed thread.
pub(crate) fn spawn_managed(f: Box<dyn FnOnce() + Send>) -> Tid {
    let (sh, _) = current().expect("spawn_managed outside a model run");
    let tid = {
        let mut st = lock_state(&sh);
        st.threads.push(TState::Ready(Op::Start));
        st.threads.len() - 1
    };
    let sh2 = Arc::clone(&sh);
    let handle = std::thread::Builder::new()
        .name(format!("qp-verify-{tid}"))
        .spawn(move || thread_body(sh2, tid, f))
        .expect("spawn model thread");
    sh.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    tid
}

/// True once `tid` has finished (used by join enabledness and handles).
fn thread_body(sh: Arc<Shared>, tid: Tid, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sh), tid)));
    // Wait to be scheduled for the first time.
    let started = {
        let mut st = lock_state(&sh);
        loop {
            if st.aborting {
                break false;
            }
            if st.baton == Some(tid) {
                st.threads[tid] = TState::Running;
                break true;
            }
            st = wait_state(&sh, st);
        }
    };
    let failure = if started {
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => None,
            Err(p) if p.is::<AbortRun>() => None,
            Err(p) => Some(panic_message(p.as_ref())),
        }
    } else {
        None
    };
    let mut st = lock_state(&sh);
    st.threads[tid] = TState::Finished;
    if let Some(msg) = failure {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
    }
    st.baton = None;
    sh.cv.notify_all();
    drop(st);
    CTX.with(|c| *c.borrow_mut() = None);
}

fn op_enabled(st: &State, op: Op) -> bool {
    match op {
        Op::Start | Op::TryLock(_) | Op::TryShare(_) | Op::Atomic(_) => true,
        Op::Lock(o) => st
            .locks
            .get(&o)
            .is_none_or(|l| l.excl.is_none() && l.shared == 0),
        Op::Share(o) => st.locks.get(&o).is_none_or(|l| l.excl.is_none()),
        Op::Join(t) => matches!(st.threads[t], TState::Finished),
    }
}

/// One scheduling decision: which threads could run, which one did, and
/// which one had been running (for preemption accounting).
struct Decision {
    enabled: Vec<Tid>,
    chosen: Tid,
    prev: Option<Tid>,
}

impl Decision {
    /// A choice of `c` preempts when the previously running thread could
    /// have continued but `c` is someone else.
    fn preempts(&self, c: Tid) -> bool {
        matches!(self.prev, Some(p) if p != c && self.enabled.contains(&p))
    }

    /// Canonical exploration order: the non-preempting default first, then
    /// the remaining enabled threads in ascending order.
    fn alternative_order(&self) -> Vec<Tid> {
        let def = default_choice(&self.enabled, self.prev);
        let mut order = vec![def];
        order.extend(self.enabled.iter().copied().filter(|&t| t != def));
        order
    }
}

fn default_choice(enabled: &[Tid], prev: Option<Tid>) -> Tid {
    match prev {
        Some(p) if enabled.contains(&p) => p,
        _ => enabled[0],
    }
}

enum RunResult {
    Completed,
    Failed(String),
    Deadlock,
}

/// How far to explore.
#[derive(Debug, Clone)]
pub struct Config {
    /// Stop after this many complete schedules (the report marks the run
    /// truncated when the space was larger).
    pub max_schedules: usize,
    /// Maximum preemptive context switches per schedule (`None` = no
    /// bound). Forced switches — the running thread blocked or finished —
    /// are always free.
    pub preemption_bound: Option<usize>,
}

impl Default for Config {
    /// 2,000 schedules, unbounded preemptions: enough to clear the
    /// "≥ 1,000 distinct interleavings" bar the core models are held to.
    fn default() -> Config {
        Config {
            max_schedules: 2_000,
            preemption_bound: None,
        }
    }
}

impl Config {
    /// A CI-sized budget: few hundred schedules under a small preemption
    /// bound (seeded-bug self-checks still reproduce under it).
    pub fn smoke() -> Config {
        Config {
            max_schedules: 300,
            preemption_bound: Some(3),
        }
    }

    /// A config exploring up to `n` schedules, unbounded preemptions.
    pub fn with_max_schedules(n: usize) -> Config {
        Config {
            max_schedules: n,
            preemption_bound: None,
        }
    }
}

/// A schedule that violated an invariant (or deadlocked), replayable with
/// [`replay`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// The thread chosen at each decision point, in order.
    pub schedule: Vec<Tid>,
    /// The panic message of the violated assertion (or a deadlock report).
    pub message: String,
}

impl Failure {
    /// The schedule as `"0,1,2,..."` — the format [`parse_schedule`]
    /// accepts and the `qp-verify` binary prints.
    pub fn schedule_string(&self) -> String {
        let items: Vec<String> = self.schedule.iter().map(Tid::to_string).collect();
        items.join(",")
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [replay schedule: \"{}\"]",
            self.message,
            self.schedule_string()
        )
    }
}

/// Parses a `"0,1,2"` schedule string (the inverse of
/// [`Failure::schedule_string`]).
pub fn parse_schedule(s: &str) -> Option<Vec<Tid>> {
    if s.trim().is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|t| t.trim().parse().ok()).collect()
}

/// The outcome of an [`explore`] run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct complete interleavings executed.
    pub schedules: usize,
    /// True when `max_schedules` stopped exploration before the space was
    /// exhausted.
    pub truncated: bool,
    /// The first failing schedule, if any invariant broke.
    pub failure: Option<Failure>,
}

/// Installs (once) a panic hook that silences the default backtrace spew
/// for managed model threads — their panics are *expected* output, captured
/// and reported as failures with a schedule. Other threads keep the
/// previous hook's behavior.
fn quiet_model_panics() {
    static HOOK: sync::OnceLock<()> = sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let managed = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("qp-verify-"));
            if !managed {
                prev(info);
            }
        }));
    });
}

fn run_once(f: &Arc<dyn Fn() + Send + Sync>, prefix: &[Tid]) -> (RunResult, Vec<Decision>) {
    quiet_model_panics();
    let sh = Arc::new(Shared {
        mx: Mutex::new(State {
            threads: vec![TState::Ready(Op::Start)],
            locks: HashMap::new(),
            baton: None,
            aborting: false,
            failure: None,
        }),
        cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
    });
    let sh2 = Arc::clone(&sh);
    let root = Arc::clone(f);
    let root_handle = std::thread::Builder::new()
        .name("qp-verify-0".into())
        .spawn(move || thread_body(sh2, 0, Box::new(move || root())))
        .expect("spawn model root thread");
    sh.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(root_handle);

    let mut decisions: Vec<Decision> = Vec::new();
    let mut prev: Option<Tid> = None;
    let result = {
        let mut st = lock_state(&sh);
        loop {
            while st.baton.is_some() {
                st = wait_state(&sh, st);
            }
            if let Some(msg) = st.failure.take() {
                break RunResult::Failed(msg);
            }
            let ready: Vec<(Tid, Op)> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    TState::Ready(op) => Some((t, *op)),
                    _ => None,
                })
                .collect();
            if ready.is_empty() {
                // Every thread finished (a Running thread would mean the
                // baton is still out).
                break RunResult::Completed;
            }
            let enabled: Vec<Tid> = ready
                .iter()
                .filter(|(_, op)| op_enabled(&st, *op))
                .map(|(t, _)| *t)
                .collect();
            if enabled.is_empty() {
                break RunResult::Deadlock;
            }
            let chosen = match prefix.get(decisions.len()) {
                Some(&c) if enabled.contains(&c) => c,
                _ => default_choice(&enabled, prev),
            };
            decisions.push(Decision {
                enabled: enabled.clone(),
                chosen,
                prev,
            });
            prev = Some(chosen);
            st.baton = Some(chosen);
            sh.cv.notify_all();
        }
    };
    // Tear down: wake parked threads so they unwind, then join everyone.
    {
        let mut st = lock_state(&sh);
        st.aborting = true;
        sh.cv.notify_all();
    }
    let handles = std::mem::take(&mut *sh.handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    (result, decisions)
}

/// The next unexplored schedule prefix in depth-first order, or `None` when
/// the space is exhausted (under the preemption bound).
fn next_prefix(decisions: &[Decision], bound: Option<usize>) -> Option<Vec<Tid>> {
    // Preemptions consumed by the first i decisions.
    let mut used = Vec::with_capacity(decisions.len() + 1);
    used.push(0usize);
    for d in decisions {
        used.push(used.last().copied().unwrap_or(0) + usize::from(d.preempts(d.chosen)));
    }
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        let order = d.alternative_order();
        let pos = order
            .iter()
            .position(|&t| t == d.chosen)
            .expect("chosen came from the enabled set");
        for &alt in &order[pos + 1..] {
            let cost = used[i] + usize::from(d.preempts(alt));
            if bound.is_none_or(|b| cost <= b) {
                let mut p: Vec<Tid> = decisions[..i].iter().map(|d| d.chosen).collect();
                p.push(alt);
                return Some(p);
            }
        }
    }
    None
}

/// Enumerates interleavings of `f` depth-first until the space is
/// exhausted, `cfg.max_schedules` is hit, or an invariant fails.
///
/// Every assertion inside the model (on any thread) is an invariant: a
/// panic stops exploration and is reported with the exact schedule that
/// triggered it, which [`replay`] re-executes deterministically.
pub fn explore<F>(cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<Tid> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let (result, decisions) = run_once(&f, &prefix);
        let schedule: Vec<Tid> = decisions.iter().map(|d| d.chosen).collect();
        match result {
            RunResult::Failed(message) => {
                return Report {
                    schedules,
                    truncated: false,
                    failure: Some(Failure { schedule, message }),
                }
            }
            RunResult::Deadlock => {
                return Report {
                    schedules,
                    truncated: false,
                    failure: Some(Failure {
                        schedule,
                        message: "deadlock: no thread is enabled".to_string(),
                    }),
                }
            }
            RunResult::Completed => schedules += 1,
        }
        match next_prefix(&decisions, cfg.preemption_bound) {
            None => {
                return Report {
                    schedules,
                    truncated: false,
                    failure: None,
                }
            }
            Some(_) if schedules >= cfg.max_schedules => {
                return Report {
                    schedules,
                    truncated: true,
                    failure: None,
                }
            }
            Some(p) => prefix = p,
        }
    }
}

/// Re-executes exactly one schedule (as recorded in a [`Failure`]).
/// Returns the failure it reproduces, or `Ok(())` if the run completes —
/// which for a schedule printed by the checker means non-reproducibility
/// and should be treated as a checker bug.
pub fn replay<F>(schedule: &[Tid], f: F) -> Result<(), Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let (result, decisions) = run_once(&f, schedule);
    let schedule: Vec<Tid> = decisions.iter().map(|d| d.chosen).collect();
    match result {
        RunResult::Completed => Ok(()),
        RunResult::Failed(message) => Err(Failure { schedule, message }),
        RunResult::Deadlock => Err(Failure {
            schedule,
            message: "deadlock: no thread is enabled".to_string(),
        }),
    }
}
