//! The workspace's concurrency protocols, rewritten as checked models.
//!
//! Each model is a faithful miniature of a production protocol — the same
//! lock/atomic choreography, with bookkeeping shrunk until exhaustive (or
//! budget-capped) interleaving enumeration is tractable. Passing models
//! assert their invariant over every explored schedule; each is paired
//! with a `*-seeded-bug` variant that re-introduces a specific protocol
//! violation and **must** be caught — proving the checker can see the bug
//! class, not just that the fixed code is quiet.
//!
//! | model | production counterpart |
//! |---|---|
//! | `no-stale-quote` | `Broker::set_pricing` epoch bump vs `ShardSet::quote` cache serve (PR 5) |
//! | `rw-atomicity` | `set_pricing` vs `quote_batch` reader-writer atomicity |
//! | `claim-exactly-once` | `claim_map` work-claiming ledger (bit-identical parallel revenue) |
//! | `pending-bounds` | pending-quote table capacity eviction in `ShardSet` |

use crate::sync::{AtomicU64, Mutex, RwLock};
use crate::thread;
use crate::{explore, replay, Config, Report};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Price floor used by the epoch models; prices encode the epoch that
/// produced them (`price - BASE == epoch`), so consistency is checkable
/// from a served pair alone. Mirrors the trick in
/// `crates/server/tests/epoch_races.rs`.
const BASE: u64 = 10_000;

/// The no-stale-quote protocol from PR 5: a repricer updates pricing under
/// the write lock and bumps the monotone epoch *inside* that critical
/// section; quoters serve from a per-bundle cache only when the cached
/// entry's epoch equals the epoch they observed at request start, filling
/// misses from an atomically-consistent `(price, epoch)` snapshot taken
/// under the read lock.
///
/// Invariant: every served pair satisfies `price == BASE + epoch`.
///
/// With `bug_epoch_outside_lock`, the repricer bumps the epoch *before*
/// taking the write lock — the intentionally seeded PR 6 bug. A quoter
/// scheduled between bump and price-write then snapshots
/// `(old price, new epoch)` and serves a stale quote.
fn no_stale_quote(
    quoters: usize,
    quotes_per: usize,
    repricings: usize,
    bug_epoch_outside_lock: bool,
) -> impl Fn() + Send + Sync {
    move || {
        let pricing = Arc::new(RwLock::new(BASE));
        let epoch = Arc::new(AtomicU64::new(0));
        let cache = Arc::new(Mutex::new(None::<(u64, u64)>));
        let mut handles = Vec::new();
        {
            let pricing = Arc::clone(&pricing);
            let epoch = Arc::clone(&epoch);
            handles.push(thread::spawn(move || {
                for _ in 0..repricings {
                    if bug_epoch_outside_lock {
                        // BUG: visible before the price it describes.
                        epoch.fetch_add(1, Ordering::SeqCst);
                        *pricing.write() += 1;
                    } else {
                        let mut p = pricing.write();
                        *p += 1;
                        epoch.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for _ in 0..quoters {
            let pricing = Arc::clone(&pricing);
            let epoch = Arc::clone(&epoch);
            let cache = Arc::clone(&cache);
            handles.push(thread::spawn(move || {
                for _ in 0..quotes_per {
                    let seen = epoch.load(Ordering::SeqCst);
                    let hit = match *cache.lock() {
                        Some((p, e)) if e == seen => Some((p, e)),
                        _ => None,
                    };
                    let (price, at) = match hit {
                        Some(pair) => pair,
                        None => {
                            // versioned_price: epoch read under the read
                            // lock, so the pair is consistent — unless the
                            // bump escaped the write lock.
                            let snap = {
                                let p = pricing.read();
                                (*p, epoch.load(Ordering::SeqCst))
                            };
                            let mut c = cache.lock();
                            if c.is_none_or(|(_, e)| e < snap.1) {
                                *c = Some(snap);
                            }
                            snap
                        }
                    };
                    assert!(
                        price == BASE + at,
                        "stale quote served: price {price} claims epoch {at} \
                         (expected price {})",
                        BASE + at
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// Reader-writer atomicity of `set_pricing` vs `quote_batch`: a writer
/// mutates a two-part pricing state under the write lock; readers snapshot
/// both parts under the read lock and must never observe a half-applied
/// update. The parts are atomics so the model has yield points *inside*
/// the critical sections — the lock, not op indivisibility, must provide
/// the atomicity.
///
/// With `bug_unlocked_read`, readers skip the read lock (torn reads).
fn rw_atomicity(
    writes: usize,
    readers: usize,
    reads_per: usize,
    bug_unlocked_read: bool,
) -> impl Fn() + Send + Sync {
    move || {
        let gate = Arc::new(RwLock::new(()));
        let lo = Arc::new(AtomicU64::new(0));
        let hi = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        {
            let gate = Arc::clone(&gate);
            let lo = Arc::clone(&lo);
            let hi = Arc::clone(&hi);
            handles.push(thread::spawn(move || {
                for _ in 0..writes {
                    let _g = gate.write();
                    lo.fetch_add(1, Ordering::SeqCst);
                    hi.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for _ in 0..readers {
            let gate = Arc::clone(&gate);
            let lo = Arc::clone(&lo);
            let hi = Arc::clone(&hi);
            handles.push(thread::spawn(move || {
                for _ in 0..reads_per {
                    let (a, b) = if bug_unlocked_read {
                        // BUG: snapshot without the read lock.
                        (lo.load(Ordering::SeqCst), hi.load(Ordering::SeqCst))
                    } else {
                        let _g = gate.read();
                        (lo.load(Ordering::SeqCst), hi.load(Ordering::SeqCst))
                    };
                    assert!(a == b, "torn pricing read: lo {a}, hi {b}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// The `claim_map` ledger from `qp-market`'s parallel revenue sweep:
/// workers claim the next unclaimed index under one mutex critical section
/// and record their result at that index. Invariant: each index is claimed
/// exactly once and the final cursor equals the item count.
///
/// With `bug_split_claim`, the read-cursor and advance-cursor steps run in
/// two separate critical sections — two workers can claim the same index.
fn claim_exactly_once(
    workers: usize,
    items: usize,
    bug_split_claim: bool,
) -> impl Fn() + Send + Sync {
    move || {
        // (cursor, per-index claim counts) — one lock, like `claim_map`.
        let ledger = Arc::new(Mutex::new((0usize, vec![0u32; items])));
        let mut handles = Vec::new();
        for _ in 0..workers {
            let ledger = Arc::clone(&ledger);
            handles.push(thread::spawn(move || loop {
                let idx = if bug_split_claim {
                    // BUG: check and advance in separate critical sections.
                    let cur = ledger.lock().0;
                    if cur >= items {
                        break;
                    }
                    ledger.lock().0 += 1;
                    cur
                } else {
                    let mut g = ledger.lock();
                    if g.0 >= items {
                        break;
                    }
                    let i = g.0;
                    g.0 += 1;
                    i
                };
                let mut g = ledger.lock();
                g.1[idx] += 1;
                let n = g.1[idx];
                assert!(n == 1, "index {idx} claimed {n} times");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let g = ledger.lock();
        assert!(
            g.1.iter().all(|&n| n == 1),
            "claim ledger not exactly-once: {:?}",
            g.1
        );
    }
}

/// The pending-quote table from `ShardSet::quote`: quoters draw unique ids
/// from an atomic counter and insert under the table mutex, evicting the
/// oldest entry first when at capacity. Invariants: the table never
/// exceeds its capacity and no id is ever inserted twice.
fn pending_bounds(quoters: usize, inserts_per: usize, cap: usize) -> impl Fn() + Send + Sync {
    move || {
        let next_id = Arc::new(AtomicU64::new(0));
        let pending = Arc::new(Mutex::new(BTreeMap::new()));
        let mut handles = Vec::new();
        for q in 0..quoters {
            let next_id = Arc::clone(&next_id);
            let pending = Arc::clone(&pending);
            handles.push(thread::spawn(move || {
                for _ in 0..inserts_per {
                    let id = next_id.fetch_add(1, Ordering::SeqCst) + 1;
                    let mut p = pending.lock();
                    if p.len() >= cap {
                        p.pop_first();
                    }
                    let prev = p.insert(id, q);
                    assert!(prev.is_none(), "quote id {id} issued twice");
                    assert!(
                        p.len() <= cap,
                        "pending table over capacity: {} > {cap}",
                        p.len()
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// One catalog entry: a named model plus whether the checker is *expected*
/// to find a counterexample (seeded-bug variants).
pub struct ModelSpec {
    /// Catalog name (stable; used by `--model` / `--replay`).
    pub name: &'static str,
    /// One-line description shown by `--list`.
    pub about: &'static str,
    /// True for seeded-bug variants: a clean report is a checker failure.
    pub expect_failure: bool,
    build: fn() -> Box<dyn Fn() + Send + Sync>,
}

impl ModelSpec {
    /// Explores the model under `cfg` and returns the raw report.
    pub fn check(&self, cfg: &Config) -> Report {
        explore(cfg, (self.build)())
    }

    /// Re-executes one schedule of this model; `Err` is the reproduced
    /// failure.
    pub fn replay(&self, schedule: &[crate::Tid]) -> Result<(), crate::Failure> {
        replay(schedule, (self.build)())
    }
}

/// The full model catalog: the four core invariants plus their seeded-bug
/// counterparts. Seeded variants use minimal sizes so depth-first search
/// reaches the buggy interleaving within a smoke budget.
pub fn catalog() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "no-stale-quote",
            about: "epoch bump under write lock vs cached-quote serve (PR 5 protocol)",
            expect_failure: false,
            build: || Box::new(no_stale_quote(2, 2, 2, false)),
        },
        ModelSpec {
            name: "no-stale-quote-seeded-bug",
            about: "epoch bump moved OUTSIDE the write lock — must be caught",
            expect_failure: true,
            build: || Box::new(no_stale_quote(1, 1, 1, true)),
        },
        ModelSpec {
            name: "rw-atomicity",
            about: "set_pricing vs quote_batch reader-writer snapshot atomicity",
            expect_failure: false,
            build: || Box::new(rw_atomicity(2, 2, 2, false)),
        },
        ModelSpec {
            name: "rw-atomicity-seeded-bug",
            about: "reader skips the read lock (torn snapshot) — must be caught",
            expect_failure: true,
            build: || Box::new(rw_atomicity(1, 1, 1, true)),
        },
        ModelSpec {
            name: "claim-exactly-once",
            about: "claim_map ledger: every index claimed exactly once",
            expect_failure: false,
            build: || Box::new(claim_exactly_once(2, 4, false)),
        },
        ModelSpec {
            name: "claim-exactly-once-seeded-bug",
            about: "cursor check/advance split across critical sections — must be caught",
            expect_failure: true,
            build: || Box::new(claim_exactly_once(2, 1, true)),
        },
        ModelSpec {
            name: "pending-bounds",
            about: "pending-quote table stays within capacity, ids unique",
            expect_failure: false,
            build: || Box::new(pending_bounds(3, 2, 2)),
        },
    ]
}

/// The verdict of checking one catalog model: the report plus whether the
/// outcome matches the expectation (seeded bugs must fail; core models
/// must not).
pub struct ModelVerdict {
    /// The catalog entry's name.
    pub name: &'static str,
    /// Whether a counterexample was expected.
    pub expect_failure: bool,
    /// The exploration report.
    pub report: Report,
    /// For caught seeded bugs: whether replaying the reported schedule
    /// reproduced the same failure.
    pub replay_confirmed: Option<bool>,
}

impl ModelVerdict {
    /// True when the outcome matches the expectation (and, for seeded
    /// bugs, the counterexample replays).
    pub fn ok(&self) -> bool {
        match (&self.report.failure, self.expect_failure) {
            (None, false) => true,
            (Some(_), true) => self.replay_confirmed == Some(true),
            _ => false,
        }
    }
}

/// Checks every catalog model under `cfg`, replaying any counterexample to
/// confirm reproducibility.
pub fn run_catalog(cfg: &Config) -> Vec<ModelVerdict> {
    catalog()
        .into_iter()
        .map(|spec| {
            let report = spec.check(cfg);
            let replay_confirmed = report.failure.as_ref().map(|f| {
                spec.replay(&f.schedule)
                    .err()
                    .is_some_and(|r| r.message == f.message)
            });
            ModelVerdict {
                name: spec.name,
                expect_failure: spec.expect_failure,
                report,
                replay_confirmed,
            }
        })
        .collect()
}
