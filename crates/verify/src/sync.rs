//! Instrumented drop-in replacements for the `parking_lot` facade types
//! plus the atomics the workspace uses.
//!
//! Each type mirrors the facade's API exactly, so
//! `vendor/parking_lot` can re-export these under `cfg(qp_verify)` and the
//! production crates compile unchanged against either implementation.
//!
//! Inside a model run every operation is a scheduler yield point; outside a
//! run (including ordinary tests in a `--cfg qp_verify` build) the shims
//! delegate to `std::sync`, so instrumented builds still behave normally.

use crate::scheduler::{self, Oid, Op};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{self, OnceLock, TryLockError};

/// Lazily-allocated scheduler identity for a shim object. Lazy because
/// `new` must stay `const` to match the facade API.
#[derive(Debug, Default)]
struct LazyOid(OnceLock<Oid>);

impl LazyOid {
    const fn new() -> LazyOid {
        LazyOid(OnceLock::new())
    }

    fn get(&self) -> Oid {
        *self.0.get_or_init(scheduler::alloc_oid)
    }
}

/// Model-checked mutex with the facade's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    oid: LazyOid,
    inner: sync::Mutex<T>,
}

/// Guard of [`Mutex`]; releases the scheduler hold on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `None` when acquired outside a model run (nothing to release).
    oid: Option<Oid>,
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            oid: LazyOid::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock; a scheduler yield point inside a model run.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let oid = if scheduler::in_model() {
            let o = self.oid.get();
            scheduler::acquire(Op::Lock(o));
            Some(o)
        } else {
            None
        };
        MutexGuard {
            oid,
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let oid = if scheduler::in_model() {
            let o = self.oid.get();
            scheduler::acquire(Op::TryLock(o));
            if !scheduler::try_take_excl(o) {
                return None;
            }
            Some(o)
        } else {
            None
        };
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { oid, inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                oid,
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => {
                // The scheduler said free but std disagrees: only possible
                // outside a model run (oid is None), so nothing to undo.
                debug_assert!(oid.is_none(), "scheduler/std lock-state divergence");
                None
            }
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(o) = self.oid {
            scheduler::release_excl(o);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Model-checked reader-writer lock with the facade's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    oid: LazyOid,
    inner: sync::RwLock<T>,
}

/// Shared read guard of [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    oid: Option<Oid>,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard of [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    oid: Option<Oid>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            oid: LazyOid::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access; a scheduler yield point in a model.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let oid = if scheduler::in_model() {
            let o = self.oid.get();
            scheduler::acquire(Op::Share(o));
            Some(o)
        } else {
            None
        };
        RwLockReadGuard {
            oid,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access; a scheduler yield point in a model.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let oid = if scheduler::in_model() {
            let o = self.oid.get();
            scheduler::acquire(Op::Lock(o));
            Some(o)
        } else {
            None
        };
        RwLockWriteGuard {
            oid,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let oid = if scheduler::in_model() {
            let o = self.oid.get();
            scheduler::acquire(Op::TryShare(o));
            if !scheduler::try_take_shared(o) {
                return None;
            }
            Some(o)
        } else {
            None
        };
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { oid, inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                oid,
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => {
                debug_assert!(oid.is_none(), "scheduler/std lock-state divergence");
                None
            }
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let oid = if scheduler::in_model() {
            let o = self.oid.get();
            scheduler::acquire(Op::TryLock(o));
            if !scheduler::try_take_excl(o) {
                return None;
            }
            Some(o)
        } else {
            None
        };
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { oid, inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                oid,
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => {
                debug_assert!(oid.is_none(), "scheduler/std lock-state divergence");
                None
            }
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(o) = self.oid {
            scheduler::release_shared(o);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(o) = self.oid {
            scheduler::release_excl(o);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

macro_rules! checked_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            oid: LazyOid,
            inner: sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic holding `value`.
            pub const fn new(value: $ty) -> $name {
                $name {
                    oid: LazyOid::new(),
                    inner: sync::atomic::$std::new(value),
                }
            }

            fn touch(&self) {
                if scheduler::in_model() {
                    scheduler::acquire(Op::Atomic(self.oid.get()));
                }
            }

            /// Loads the value; a scheduler yield point in a model.
            pub fn load(&self, order: Ordering) -> $ty {
                self.touch();
                self.inner.load(order)
            }

            /// Stores `value`; a scheduler yield point in a model.
            pub fn store(&self, value: $ty, order: Ordering) {
                self.touch();
                self.inner.store(value, order);
            }

            /// Adds `value`, returning the previous value; one yield point.
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.touch();
                self.inner.fetch_add(value, order)
            }

            /// Subtracts `value`, returning the previous value; one yield
            /// point.
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.touch();
                self.inner.fetch_sub(value, order)
            }

            /// Raises the value to at least `value`, returning the
            /// previous value; one yield point.
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                self.touch();
                self.inner.fetch_max(value, order)
            }

            /// CAS-loop update; one yield point — the retries of the
            /// underlying loop are invisible to other threads except
            /// through the final successful exchange.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                self.touch();
                self.inner.fetch_update(set_order, fetch_order, f)
            }

            /// Consumes the atomic, returning the inner value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }
    };
}

checked_atomic!(
    /// Model-checked `AtomicU64`: every access is one scheduler yield point
    /// (the access itself stays indivisible, matching hardware atomicity).
    AtomicU64,
    AtomicU64,
    u64
);
checked_atomic!(
    /// Model-checked `AtomicUsize`; see [`AtomicU64`].
    AtomicUsize,
    AtomicUsize,
    usize
);

/// Model-checked `AtomicBool`; see [`AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicBool {
    oid: LazyOid,
    inner: sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic holding `value`.
    pub const fn new(value: bool) -> AtomicBool {
        AtomicBool {
            oid: LazyOid::new(),
            inner: sync::atomic::AtomicBool::new(value),
        }
    }

    fn touch(&self) {
        if scheduler::in_model() {
            scheduler::acquire(Op::Atomic(self.oid.get()));
        }
    }

    /// Loads the value; a scheduler yield point in a model.
    pub fn load(&self, order: Ordering) -> bool {
        self.touch();
        self.inner.load(order)
    }

    /// Stores `value`; a scheduler yield point in a model.
    pub fn store(&self, value: bool, order: Ordering) {
        self.touch();
        self.inner.store(value, order);
    }

    /// Swaps in `value`, returning the previous value; one yield point
    /// (the swap itself stays indivisible, matching hardware atomicity).
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.touch();
        self.inner.swap(value, order)
    }

    /// Consumes the atomic, returning the inner value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}
