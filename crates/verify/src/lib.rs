//! `qp-verify` — a dependency-free, loom-style deterministic-interleaving
//! model checker for this workspace's concurrency protocols.
//!
//! Three layers:
//!
//! * [`sync`] / [`thread`] — instrumented `Mutex` / `RwLock` / atomics /
//!   `spawn` shims, API-compatible with the `parking_lot` vendor facade.
//!   Under `--cfg qp_verify` the facade re-exports these, so production
//!   code can be model-checked without modification; outside a model run
//!   the shims delegate to `std`, so instrumented builds behave normally.
//! * the scheduler ([`explore`] / [`replay`]) — runs a model closure with
//!   every shim operation as a yield point, enumerating interleavings
//!   depth-first up to an optional preemption bound. An assertion failure
//!   on any thread (or a deadlock) stops exploration and is reported with
//!   the exact schedule, which `replay` re-executes deterministically.
//! * [`models`] — the repo-specific invariants rewritten as small checked
//!   models (no-stale-quote epoch protocol, reader-writer atomicity,
//!   claim-exactly-once, pending-table bounds), each paired with a
//!   seeded-bug variant proving the checker actually catches the
//!   corresponding protocol violation.
//!
//! Run the catalog with `cargo run --release -p qp-verify` (add `--smoke`
//! for the CI-sized budget, `--replay <model> <schedule>` to reproduce a
//! printed counterexample).

mod scheduler;

pub mod models;
pub mod sync;
pub mod thread;

pub use scheduler::{explore, parse_schedule, replay, Config, Failure, Report, Tid};

#[cfg(test)]
mod tests {
    use super::sync::{AtomicU64, Mutex};
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn shims_work_outside_a_model() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        let a = AtomicU64::new(1);
        a.fetch_add(2, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn explores_all_interleavings_of_two_increments() {
        // Two threads, one atomic increment each: the atomic op plus
        // start/join points gives a handful of schedules, all completing.
        let report = explore(&Config::default(), || {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.schedules >= 2, "only {} schedules", report.schedules);
        assert!(!report.truncated);
    }

    #[test]
    fn catches_unsynchronized_check_then_act() {
        // Classic lost-update: read, then write back read+1 as two separate
        // atomic ops. Some interleaving must lose an update.
        let report = explore(&Config::default(), || {
            let a = Arc::new(AtomicU64::new(0));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let a = Arc::clone(&a);
                hs.push(thread::spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = report.failure.expect("lost update must be found");
        assert!(failure.message.contains("lost update"), "{failure}");
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn detects_lock_order_deadlock() {
        let report = explore(&Config::default(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            h.join().unwrap();
        });
        let failure = report.failure.expect("deadlock must be found");
        assert!(failure.message.contains("deadlock"), "{failure}");
    }

    #[test]
    fn replay_reproduces_a_failure() {
        let model = || {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = thread::spawn(move || {
                let v = a2.load(Ordering::SeqCst);
                a2.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        };
        let report = explore(&Config::default(), model);
        let failure = report.failure.expect("lost update must be found");
        let replayed = replay(&failure.schedule, model).expect_err("replay must reproduce");
        assert_eq!(replayed.message, failure.message);
    }

    #[test]
    fn schedule_strings_round_trip() {
        let f = Failure {
            schedule: vec![0, 1, 1, 2, 0],
            message: "m".into(),
        };
        assert_eq!(f.schedule_string(), "0,1,1,2,0");
        assert_eq!(parse_schedule("0,1,1,2,0"), Some(vec![0, 1, 1, 2, 0]));
        assert_eq!(parse_schedule(""), Some(vec![]));
        assert_eq!(parse_schedule("1,x"), None);
    }

    #[test]
    fn preemption_bound_shrinks_the_space() {
        let model = || {
            let a = Arc::new(AtomicU64::new(0));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let a = Arc::clone(&a);
                hs.push(thread::spawn(move || {
                    for _ in 0..3 {
                        a.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
        };
        let unbounded = explore(&Config::default(), model);
        let bounded = explore(
            &Config {
                max_schedules: 2_000,
                preemption_bound: Some(1),
            },
            model,
        );
        assert!(unbounded.failure.is_none());
        assert!(bounded.failure.is_none());
        assert!(
            bounded.schedules < unbounded.schedules,
            "bound {} !< unbounded {}",
            bounded.schedules,
            unbounded.schedules
        );
    }
}
