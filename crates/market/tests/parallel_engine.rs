//! Equivalence of the parallel and serial conflict engines on the paper's
//! world workload: `ParallelConflictEngine` must produce the exact same
//! hypergraph (edge by edge, bit by bit) as the serial `DeltaConflictEngine`,
//! regardless of worker count or batch interleaving.

use qp_market::{
    build_hypergraph, ConflictEngine, DeltaConflictEngine, ParallelConflictEngine, SupportConfig,
    SupportSet,
};
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;

#[test]
fn parallel_and_serial_engines_build_identical_world_hypergraphs() {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    // The first 60 queries cover every template family of the skewed
    // workload while keeping the test fast.
    let queries = &workload.queries[..60];
    let support = SupportSet::generate(&db, &SupportConfig::with_size(150));

    let serial = DeltaConflictEngine::new(&db, &support);
    let h_serial = build_hypergraph(&serial, queries);

    for threads in [1usize, 3, 8] {
        // Forced counts: `with_threads` clamps to the machine's parallelism,
        // which would silently reduce this to a serial-vs-serial comparison
        // on a single-core runner.
        let parallel = ParallelConflictEngine::with_threads_forced(&db, &support, threads);
        let h_parallel = build_hypergraph(&parallel, queries);
        assert_eq!(h_serial.num_items(), h_parallel.num_items());
        assert_eq!(h_serial.num_edges(), h_parallel.num_edges());
        for i in 0..h_serial.num_edges() {
            assert_eq!(
                h_serial.edge(i).items,
                h_parallel.edge(i).items,
                "edge {i} diverges at {threads} threads"
            );
        }
        // Aggregate index queries agree too (they are derived purely from
        // the edge structure).
        assert_eq!(h_serial.max_degree(), h_parallel.max_degree());
        assert_eq!(h_serial.item_degrees(), h_parallel.item_degrees());
        assert_eq!(
            h_serial.edges_with_unique_item(),
            h_parallel.edges_with_unique_item()
        );
    }
}

#[test]
fn default_thread_count_matches_available_parallelism() {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let support = SupportSet::generate(&db, &SupportConfig::with_size(20));
    let engine = ParallelConflictEngine::new(&db, &support);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert_eq!(engine.threads(), hw);
    assert_eq!(engine.support_size(), support.len());
}
