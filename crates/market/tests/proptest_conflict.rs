//! Property-based equivalence of the two conflict engines, plus structural
//! invariants of conflict sets.
//!
//! The delta-aware engine takes incremental shortcuts for single-table query
//! shapes; these tests pit it against the naive engine (full re-evaluation)
//! on randomized databases, support sets, and a pool of query shapes covering
//! every fast path and the fallback.

use proptest::prelude::*;
use qp_market::{
    ConflictEngine, DeltaConflictEngine, NaiveConflictEngine, ParallelConflictEngine,
    SupportConfig, SupportSet,
};
use qp_qdb::{AggFunc, ColumnType, Database, Expr, Query, Relation, Schema, Value};

#[derive(Debug, Clone)]
struct RandomDb {
    rows: Vec<(u8, i64, u8)>,
    seed: u64,
    support: usize,
}

fn db_strategy() -> impl Strategy<Value = RandomDb> {
    (
        proptest::collection::vec((0u8..4, -30i64..30, 0u8..3), 4..30),
        0u64..1000,
        5usize..40,
    )
        .prop_map(|(rows, seed, support)| RandomDb {
            rows,
            seed,
            support,
        })
}

fn build(rdb: &RandomDb) -> Database {
    let schema = Schema::new(vec![
        ("category", ColumnType::Str),
        ("amount", ColumnType::Int),
        ("region", ColumnType::Str),
    ]);
    let mut rel = Relation::new(schema);
    for (c, a, r) in &rdb.rows {
        rel.push(vec![
            format!("cat{c}").into(),
            Value::Int(*a),
            format!("region{r}").into(),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.add_table("Sales", rel);
    db
}

fn query_pool() -> Vec<Query> {
    vec![
        Query::scan("Sales"),
        Query::scan("Sales")
            .filter(Expr::col("amount").ge(Expr::lit(0)))
            .project_cols(&["category", "amount"]),
        Query::scan("Sales")
            .filter(Expr::col("category").eq(Expr::lit("cat1")))
            .project_cols(&["amount"]),
        Query::scan("Sales").project_cols(&["region"]).distinct(),
        Query::scan("Sales")
            .filter(Expr::col("amount").between(Expr::lit(-10), Expr::lit(10)))
            .project_cols(&["category"])
            .distinct(),
        Query::scan("Sales").aggregate(
            vec![],
            vec![
                (AggFunc::Count, None, "c"),
                (AggFunc::Sum, Some("amount"), "s"),
                (AggFunc::Min, Some("amount"), "mn"),
                (AggFunc::Max, Some("amount"), "mx"),
            ],
        ),
        Query::scan("Sales").aggregate(
            vec!["category"],
            vec![
                (AggFunc::Avg, Some("amount"), "a"),
                (AggFunc::Count, None, "c"),
            ],
        ),
        Query::scan("Sales")
            .filter(Expr::col("region").ne(Expr::lit("region0")))
            .aggregate(
                vec!["region"],
                vec![(AggFunc::CountDistinct, Some("category"), "d")],
            ),
        // Join shape exercises the naive fallback inside the delta engine.
        Query::scan("Sales")
            .join(Query::scan("Sales"), vec![("category", "category")])
            .aggregate(vec![], vec![(AggFunc::Count, None, "c")]),
        Query::scan("Sales").limit(3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_engine_agrees_with_naive_engine(rdb in db_strategy(), qi in 0usize..10) {
        let db = build(&rdb);
        let support = SupportSet::generate(
            &db,
            &SupportConfig { size: rdb.support, seed: rdb.seed, ..Default::default() },
        );
        let naive = NaiveConflictEngine::new(&db, &support);
        let fast = DeltaConflictEngine::new(&db, &support);
        let q = &query_pool()[qi];
        prop_assert_eq!(naive.conflict_set(q), fast.conflict_set(q));
    }

    #[test]
    fn conflict_sets_iterate_ascending_and_in_range(rdb in db_strategy(), qi in 0usize..10) {
        let db = build(&rdb);
        let support = SupportSet::generate(
            &db,
            &SupportConfig { size: rdb.support, seed: rdb.seed, ..Default::default() },
        );
        let fast = DeltaConflictEngine::new(&db, &support);
        let set = fast.conflict_set(&query_pool()[qi]);
        let items = set.to_vec();
        prop_assert!(items.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(items.iter().all(|&i| i < support.len()));
        prop_assert_eq!(items.len(), set.len());
        prop_assert!(items.iter().all(|&i| set.contains(i)));
    }

    #[test]
    fn full_scan_dominates_every_single_table_query(rdb in db_strategy(), qi in 0usize..8) {
        // Information monotonicity: the full relation determines every query
        // over it, so its conflict set contains every other conflict set.
        let db = build(&rdb);
        let support = SupportSet::generate(
            &db,
            &SupportConfig { size: rdb.support, seed: rdb.seed, ..Default::default() },
        );
        let fast = DeltaConflictEngine::new(&db, &support);
        let full = fast.conflict_set(&Query::scan("Sales"));
        let other = fast.conflict_set(&query_pool()[qi]);
        prop_assert!(other.is_subset(&full));
    }

    #[test]
    fn parallel_engine_agrees_with_serial_engine(rdb in db_strategy(), threads in 1usize..6) {
        let db = build(&rdb);
        let support = SupportSet::generate(
            &db,
            &SupportConfig { size: rdb.support, seed: rdb.seed, ..Default::default() },
        );
        let serial = DeltaConflictEngine::new(&db, &support);
        // Forced: `with_threads` clamps to hardware parallelism, which on a
        // single-core runner would quietly make this serial-vs-serial.
        let parallel = ParallelConflictEngine::with_threads_forced(&db, &support, threads);
        let qs = query_pool();
        prop_assert_eq!(parallel.conflict_sets(&qs), serial.conflict_sets(&qs));
    }
}
