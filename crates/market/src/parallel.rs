//! A shared work-claiming parallel map.
//!
//! Both the [`crate::conflict::ParallelConflictEngine`] and the `qp-sim`
//! engine fan independent per-item work across scoped threads with the same
//! shape: workers claim the next unprocessed index from a mutex-guarded
//! ledger, compute without holding the lock, and write the result back at
//! the item's index so output order matches input order. [`claim_map`] is
//! that pattern, written once.

use parking_lot::Mutex;

/// Maps `f` over `items` using up to `workers` scoped threads, preserving
/// input order in the output.
///
/// Each worker builds its own scratch state with `init` (e.g. a per-thread
/// engine) and claims items dynamically, so a few expensive items do not
/// leave other threads idle. With one effective worker (or one item) the map
/// runs serially on the calling thread — no spawn, no locking.
pub fn claim_map<T, S, R, I, F>(items: &[T], workers: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let mut slots = Vec::new();
    claim_map_into(items, workers, init, f, &mut slots);
    slots
        .into_iter()
        .map(|r| r.expect("scoped workers drain every item"))
        .collect()
}

/// [`claim_map`] writing into a caller-owned slot buffer instead of
/// allocating a fresh result `Vec` per call.
///
/// `slots` is cleared, then filled with `Some(result)` at every item's
/// index (input order preserved); its *capacity* is what callers reuse
/// across batches — quote loops call this every tick with the same buffer
/// (see `qp_core::QuoteScratch::slots`). Every slot is `Some` on return;
/// callers drain with `slot.expect(..)`.
pub fn claim_map_into<T, S, R, I, F>(
    items: &[T],
    workers: usize,
    init: I,
    f: F,
    slots: &mut Vec<Option<R>>,
) where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    slots.clear();
    let workers = workers.min(items.len());
    if workers <= 1 {
        let mut state = init();
        slots.extend(items.iter().map(|t| Some(f(&mut state, t))));
        return;
    }

    slots.reserve(items.len());
    slots.resize_with(items.len(), || None);
    // The shared ledger: a claim cursor plus the borrowed result slots.
    let ledger: Mutex<(usize, &mut Vec<Option<R>>)> = Mutex::new((0, slots));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = {
                        let mut led = ledger.lock();
                        if led.0 >= items.len() {
                            break;
                        }
                        led.0 += 1;
                        led.0 - 1
                    };
                    // The work itself runs without holding the ledger lock.
                    let result = f(&mut state, &items[i]);
                    ledger.lock().1[i] = Some(result);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 4, 16] {
            let out = claim_map(&items, workers, || (), |_, &x| x * 3);
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let out = claim_map(
            &[1, 2, 3],
            1,
            || (),
            |_, &x| {
                assert_eq!(std::thread::current().id(), caller);
                x + 1
            },
        );
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn per_worker_state_is_initialized_once_per_thread() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..50).collect();
        let out = claim_map(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |count, &x| {
                *count += 1;
                x
            },
        );
        assert_eq!(out, items);
        // One init per spawned worker, never per item.
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = claim_map(&[], 8, || (), |_, &x: &usize| x);
        assert!(out.is_empty());
    }

    #[test]
    fn claim_map_into_reuses_the_slot_buffer_across_batches() {
        let mut slots: Vec<Option<usize>> = Vec::new();
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 4] {
            claim_map_into(&items, workers, || (), |_, &x| x * 2, &mut slots);
            let out: Vec<usize> = slots.iter().map(|s| s.unwrap()).collect();
            let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
        let cap = slots.capacity();
        claim_map_into(&items, 4, || (), |_, &x| x, &mut slots);
        assert_eq!(slots.capacity(), cap, "steady state reallocates nothing");
        assert!(slots.iter().all(|s| s.is_some()));
    }
}
