//! Glue between the broker's in-memory revenue state and `qp-store`'s
//! durable formats: ledger ⇄ snapshot conversions, snapshot capture, and
//! single-broker crash recovery.
//!
//! The conversions are deliberately order-preserving — a ledger's `total()`
//! sums float prices in insertion order, so a round trip through the
//! snapshot format must keep every sale in its slot for the recovered
//! total to be bit-identical. The sharded server composes these same
//! pieces per shard; this module is the one-broker (in-process) path and
//! the replay oracle the crash harness checks against.

use qp_store::{LedgerSnapshot, ReplayedState, SaleEntry, Snapshot, Store, StoreError};

use crate::broker::{Broker, RevenueLedger, Sale};

/// Converts a live ledger into its durable form, preserving sale order.
pub fn ledger_to_snapshot(ledger: &RevenueLedger) -> LedgerSnapshot {
    LedgerSnapshot {
        sales: ledger
            .sales()
            .iter()
            .map(|s| SaleEntry {
                bundle_len: s.conflict_set_len as u32,
                price: s.price,
                tick: s.tick,
            })
            .collect(),
        declined_count: ledger.declined_count() as u64,
        declined_total: ledger.declined_total(),
    }
}

/// Rebuilds a live ledger from its durable form, preserving sale order.
pub fn ledger_from_snapshot(snapshot: &LedgerSnapshot) -> RevenueLedger {
    RevenueLedger::from_parts(
        snapshot
            .sales
            .iter()
            .map(|s| Sale {
                conflict_set_len: s.bundle_len as usize,
                price: s.price,
                tick: s.tick,
            })
            .collect(),
        snapshot.declined_count as usize,
        snapshot.declined_total,
    )
}

/// Captures a single-broker snapshot keyed at the store's current WAL
/// sequence. The caller must quiesce settles and repricings around the
/// call (or hold the external lock that serializes them) — the sharded
/// server does this under its durability lock.
pub fn broker_snapshot(broker: &Broker, wal_seq: u64) -> Snapshot {
    let (pricing, epoch) = broker.pricing_snapshot();
    Snapshot {
        epoch,
        wal_seq,
        next_quote_id: 0,
        pricing,
        shards: vec![ledger_to_snapshot(&broker.ledger())],
    }
}

/// Recovers a single broker from its store: loads the newest valid
/// snapshot, replays the WAL suffix, and installs the resulting pricing,
/// epoch, and ledger into `broker`.
///
/// `broker` must be **freshly rebuilt the same deterministic way** as the
/// crashed one (same database, support, algorithm, anticipated workload):
/// its current pricing/epoch seed the replay for the case where no
/// snapshot and no `Replace` record exist yet. Returns the replayed state
/// so callers can assert against it (the replay oracle).
pub fn recover_broker(broker: &Broker, store: &dyn Store) -> Result<ReplayedState, StoreError> {
    let recovery = store.recover()?;
    let (seed_pricing, seed_epoch) = broker.pricing_snapshot();
    let state = recovery.replay(seed_pricing, seed_epoch, 1);
    broker.restore_pricing(state.pricing.clone(), state.epoch);
    broker.restore_ledger(ledger_from_snapshot(&state.shards[0]));
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use qp_pricing::algorithms::PricingPatch;
    use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};
    use qp_store::MemStore;

    use crate::broker::PurchaseOutcome;
    use crate::support::SupportConfig;

    fn db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("size", ColumnType::Int),
        ]));
        for i in 0..12 {
            rel.push(vec![format!("row{i}").into(), Value::Int(i)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table("T", rel);
        db
    }

    fn build_broker(store: Option<Arc<MemStore>>) -> Broker {
        let mut b = Broker::builder(db())
            .support_config(SupportConfig::with_size(50))
            .algorithm("UBP")
            .anticipate(Query::scan("T"), 40.0);
        if let Some(store) = store {
            b = b.store(store);
        }
        b.build().expect("UBP is registered")
    }

    /// Drives an identical settle/reprice history through a broker.
    fn drive(broker: &Broker) {
        let q = Query::scan("T");
        for tick in 0..6u64 {
            let budget = if tick % 3 == 2 { 0.0 } else { 1e9 };
            let out = broker.purchase_at(&q, budget, tick).unwrap();
            match (tick % 3 == 2, out) {
                (true, PurchaseOutcome::Declined { .. }) => {}
                (false, PurchaseOutcome::Sold { .. }) => {}
                (broke, out) => panic!("tick {tick}: budget-broke={broke} got {out:?}"),
            }
            if tick == 2 {
                broker.apply_delta(&PricingPatch::SetUniformPrice(7.25));
            }
            if tick == 4 {
                broker.apply_delta(&PricingPatch::Keep); // must not log or bump
            }
        }
    }

    #[test]
    fn recovered_broker_matches_the_uncrashed_one_bit_for_bit() {
        let store = Arc::new(MemStore::new());
        let live = build_broker(Some(store.clone()));
        drive(&live);
        let live_ledger = live.ledger();
        let (live_pricing, live_epoch) = live.pricing_snapshot();
        drop(live); // the crash: all in-memory state gone, the store survives

        let recovered = build_broker(None);
        let state = recover_broker(&recovered, store.as_ref()).unwrap();
        let (pricing, epoch) = recovered.pricing_snapshot();
        assert_eq!(pricing, live_pricing);
        assert_eq!(epoch, live_epoch);
        let ledger = recovered.ledger();
        assert_eq!(ledger.len(), live_ledger.len());
        assert_eq!(ledger.total().to_bits(), live_ledger.total().to_bits());
        assert_eq!(ledger.declined_count(), live_ledger.declined_count());
        assert_eq!(
            ledger.declined_total().to_bits(),
            live_ledger.declined_total().to_bits()
        );
        assert_eq!(state.revenue().to_bits(), live_ledger.total().to_bits());
    }

    #[test]
    fn recovery_from_snapshot_plus_suffix_matches_full_replay() {
        let store = Arc::new(MemStore::new());
        let live = build_broker(Some(store.clone()));
        let q = Query::scan("T");
        for tick in 0..3u64 {
            live.purchase_at(&q, 1e9, tick).unwrap();
        }
        // Snapshot mid-history, then keep trading past it.
        store
            .write_snapshot(&broker_snapshot(&live, store.wal_seq()))
            .unwrap();
        live.apply_delta(&PricingPatch::SetUniformPrice(3.5));
        for tick in 3..5u64 {
            live.purchase_at(&q, 1e9, tick).unwrap();
        }
        let live_total = live.ledger().total();
        let live_epoch = live.pricing_snapshot().1;
        drop(live);

        let recovered = build_broker(None);
        let state = recover_broker(&recovered, store.as_ref()).unwrap();
        assert_eq!(recovered.ledger().total().to_bits(), live_total.to_bits());
        assert_eq!(state.epoch, live_epoch);
        // The snapshot really was the starting point: the replayed suffix
        // is shorter than the full history.
        let recovery = store.recover().unwrap();
        assert!(recovery.snapshot.is_some());
        assert!((recovery.wal.len() as u64) < store.wal_seq());
    }

    #[test]
    fn keep_patches_are_not_logged() {
        let store = Arc::new(MemStore::new());
        let live = build_broker(Some(store.clone()));
        let before = store.wal_seq();
        live.apply_delta(&PricingPatch::Keep);
        assert_eq!(store.wal_seq(), before, "Keep must not append");
        live.apply_delta(&PricingPatch::SetUniformPrice(1.0));
        assert_eq!(store.wal_seq(), before + 1);
    }
}
