//! # qp-market — the query-based pricing framework (Qirana-style)
//!
//! This crate implements the framework of §3 of *Revenue Maximization for
//! Query Pricing* (Chawla et al., VLDB 2019), originally realized by the
//! Qirana system:
//!
//! 1. **Support sets** ([`support`]): sample "neighbouring" databases
//!    `S ⊆ I` that differ from the seller's instance `D` in a few cells of a
//!    single tuple; each support database is stored as a compact
//!    [`qp_qdb::Delta`].
//! 2. **Conflict sets** ([`conflict`]): for every buyer query vector `Q`,
//!    compute `C_S(Q, D) = {D' ∈ S | Q(D) ≠ Q(D')}` — the hyperedge (bundle)
//!    that the pricing algorithms operate on, represented as a
//!    [`qp_core::ItemSet`] bitset. Three engines are provided: a naive
//!    engine that re-evaluates the query on every support database, a
//!    delta-aware engine with incremental fast paths for the common
//!    single-table query shapes, and a parallel engine that fans query
//!    batches across scoped worker threads.
//! 3. **Arbitrage-freeness** ([`arbitrage`]): empirical verification of the
//!    information- and combination-arbitrage conditions for a pricing
//!    function applied through conflict sets (Theorem 1).
//! 4. **Broker** ([`broker`]): a concurrent end-to-end engine a data
//!    marketplace would embed — assemble with [`broker::BrokerBuilder`]
//!    (database → support → pricing algorithm by registry name), quote
//!    queries singly or in batches, swap the pricing function under live
//!    read traffic, sell queries, and inspect the per-sale revenue ledger.

//! 5. **Durability** ([`durability`]): glue to `qp-store` — the broker can
//!    append every settle and repricing to a write-ahead log and be
//!    recovered bit-identically after a crash (see that module's docs and
//!    the repository's `STORAGE.md`).

pub mod arbitrage;
pub mod broker;
pub mod conflict;
pub mod durability;
pub mod parallel;
pub mod support;

pub use arbitrage::{
    check_all, check_combination_arbitrage, check_information_arbitrage, ArbitrageReport,
};
pub use broker::{
    Broker, BrokerBuildError, BrokerBuilder, PurchaseOutcome, QuotedQuery, RevenueLedger, Sale,
};
pub use conflict::{
    build_hypergraph, ConflictEngine, DeltaConflictEngine, NaiveConflictEngine,
    ParallelConflictEngine,
};
pub use durability::{broker_snapshot, ledger_from_snapshot, ledger_to_snapshot, recover_broker};
pub use parallel::{claim_map, claim_map_into};
pub use support::{SupportConfig, SupportSet};
