//! Support-set generation.
//!
//! Qirana samples the support `S` from the "neighbourhood" of the seller's
//! database `D`: each support database differs from `D` in a few cells of a
//! single tuple. This keeps storage proportional to `|S|` (only the
//! differences are stored) and makes conflict-set computation tractable.
//!
//! The generator below reproduces that strategy: it repeatedly picks a random
//! table, a random row, and a random non-key column, and replaces the cell
//! with a different value drawn from the column's *active domain* (for
//! strings) or a perturbed value (for numbers). Every support database is
//! represented by a [`Delta`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qp_qdb::{ColumnType, Database, Delta, Value};

/// Configuration of the support-set sampler.
#[derive(Debug, Clone)]
pub struct SupportConfig {
    /// Number of support databases `n = |S|` to generate.
    pub size: usize,
    /// RNG seed (support sets are fully deterministic given the seed).
    pub seed: u64,
    /// Column indices to never perturb, per table (typically primary keys —
    /// perturbing a key would change the instance's identity rather than its
    /// content). Pairs of `(table name, column index)`.
    pub frozen_columns: Vec<(String, usize)>,
    /// Relative magnitude of numeric perturbations (a value `v` is replaced
    /// by a draw from `v ± max(1, |v| · jitter)`).
    pub numeric_jitter: f64,
}

impl Default for SupportConfig {
    fn default() -> Self {
        SupportConfig {
            size: 1000,
            seed: 0x5eed,
            frozen_columns: Vec::new(),
            numeric_jitter: 0.5,
        }
    }
}

impl SupportConfig {
    /// Convenience constructor for a support of `size` databases.
    pub fn with_size(size: usize) -> Self {
        SupportConfig {
            size,
            ..Default::default()
        }
    }

    /// Marks `(table, column)` as frozen (never perturbed).
    pub fn freeze(mut self, table: impl Into<String>, column: usize) -> Self {
        self.frozen_columns.push((table.into(), column));
        self
    }
}

/// A generated support set: the deltas defining each neighbouring database.
#[derive(Debug, Clone)]
pub struct SupportSet {
    deltas: Vec<Delta>,
}

impl SupportSet {
    /// Samples a support set for `db` according to `config`.
    ///
    /// Returns an empty support if the database has no rows.
    pub fn generate(db: &Database, config: &SupportConfig) -> SupportSet {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tables: Vec<&str> = db.table_names().collect();
        let weights: Vec<usize> = tables
            .iter()
            .map(|t| db.table(t).map(|r| r.len()).unwrap_or(0))
            .collect();
        let total_rows: usize = weights.iter().sum();
        let mut deltas = Vec::with_capacity(config.size);
        if total_rows == 0 {
            return SupportSet { deltas };
        }

        // Pre-compute the active domain of every string column so replacement
        // values are realistic (an existing value of the same column).
        let mut domains: Vec<Vec<Vec<Value>>> = Vec::with_capacity(tables.len());
        for t in &tables {
            let rel = db.table(t).expect("table listed but missing");
            let mut cols = vec![Vec::new(); rel.schema().arity()];
            for (c, col_domain) in cols.iter_mut().enumerate() {
                if rel.schema().column_type(c) == ColumnType::Str {
                    let mut vals: Vec<Value> = rel.rows().iter().map(|r| r[c].clone()).collect();
                    vals.sort();
                    vals.dedup();
                    *col_domain = vals;
                }
            }
            domains.push(cols);
        }

        let mut attempts = 0usize;
        while deltas.len() < config.size && attempts < config.size * 20 {
            attempts += 1;
            // Pick a table proportionally to its cardinality, then a row and
            // a column uniformly.
            let mut pick = rng.gen_range(0..total_rows);
            let mut ti = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                if pick < w {
                    ti = i;
                    break;
                }
                pick -= w;
            }
            let table = tables[ti];
            let rel = db.table(table).expect("table listed but missing");
            if rel.is_empty() {
                continue;
            }
            let row = rng.gen_range(0..rel.len());
            let arity = rel.schema().arity();
            let column = rng.gen_range(0..arity);
            if config
                .frozen_columns
                .iter()
                .any(|(t, c)| t == table && *c == column)
            {
                continue;
            }

            let old = &rel.rows()[row][column];
            let new = perturb(old, &domains[ti][column], config.numeric_jitter, &mut rng);
            if new == *old {
                continue;
            }
            deltas.push(Delta::cell(table, row, column, new));
        }
        SupportSet { deltas }
    }

    /// The deltas, one per support database, indexed by item id.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }

    /// Number of support databases `n = |S|`.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True if the support is empty.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Restricts the support to its first `k` databases (used for the
    /// support-size sweeps of Figure 8 / Tables 5–6).
    pub fn truncate(&self, k: usize) -> SupportSet {
        SupportSet {
            deltas: self.deltas.iter().take(k).cloned().collect(),
        }
    }
}

/// Produces a replacement value for `old`.
fn perturb(old: &Value, domain: &[Value], jitter: f64, rng: &mut StdRng) -> Value {
    match old {
        Value::Int(i) => {
            let span = ((i.abs() as f64) * jitter).max(1.0) as i64;
            let mut delta = rng.gen_range(-span..=span);
            if delta == 0 {
                delta = 1;
            }
            Value::Int(i + delta)
        }
        Value::Float(f) => {
            let span = (f.abs() * jitter).max(1.0);
            let delta: f64 = rng.gen_range(-span..=span);
            // float-eq: guards the exact-zero draw so the perturbed value
            // always differs from the original.
            Value::Float(f + if delta == 0.0 { span } else { delta })
        }
        Value::Bool(b) => Value::Bool(!b),
        Value::Str(s) => {
            if domain.len() > 1 {
                // Pick a different existing value of the same column.
                loop {
                    let cand = &domain[rng.gen_range(0..domain.len())];
                    if cand.as_str() != Some(s.as_str()) {
                        return cand.clone();
                    }
                }
            }
            Value::Str(format!("{s}~"))
        }
        Value::Null => Value::Int(rng.gen_range(0..100)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_qdb::{Relation, Schema};

    fn db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("age", ColumnType::Int),
        ]));
        for i in 0..50 {
            rel.push(vec![
                Value::Int(i),
                format!("name{}", i % 7).into(),
                Value::Int(18 + (i % 40)),
            ])
            .unwrap();
        }
        let mut db = Database::new();
        db.add_table("User", rel);
        db
    }

    #[test]
    fn generates_requested_number_of_deltas() {
        let db = db();
        let s = SupportSet::generate(&db, &SupportConfig::with_size(200));
        assert_eq!(s.len(), 200);
        assert!(!s.is_empty());
    }

    #[test]
    fn deltas_actually_change_the_database() {
        let db = db();
        let s = SupportSet::generate(&db, &SupportConfig::with_size(100));
        for d in s.deltas() {
            assert!(!d.is_noop(&db).unwrap(), "support delta must change a cell");
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let db = db();
        let a = SupportSet::generate(
            &db,
            &SupportConfig {
                seed: 7,
                ..SupportConfig::with_size(50)
            },
        );
        let b = SupportSet::generate(
            &db,
            &SupportConfig {
                seed: 7,
                ..SupportConfig::with_size(50)
            },
        );
        let c = SupportSet::generate(
            &db,
            &SupportConfig {
                seed: 8,
                ..SupportConfig::with_size(50)
            },
        );
        assert_eq!(a.deltas(), b.deltas());
        assert_ne!(a.deltas(), c.deltas());
    }

    #[test]
    fn frozen_columns_are_never_perturbed() {
        let db = db();
        let cfg = SupportConfig::with_size(150).freeze("User", 0);
        let s = SupportSet::generate(&db, &cfg);
        for d in s.deltas() {
            assert!(d.changes.iter().all(|c| c.column != 0));
        }
    }

    #[test]
    fn string_replacements_come_from_the_active_domain() {
        let db = db();
        let s = SupportSet::generate(&db, &SupportConfig::with_size(300));
        for d in s.deltas() {
            for ch in &d.changes {
                if ch.column == 1 {
                    let v = ch.new_value.as_str().unwrap();
                    assert!(v.starts_with("name"), "unexpected replacement {v}");
                }
            }
        }
    }

    #[test]
    fn truncate_keeps_a_prefix() {
        let db = db();
        let s = SupportSet::generate(&db, &SupportConfig::with_size(40));
        let t = s.truncate(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.deltas(), &s.deltas()[..10]);
        assert_eq!(s.truncate(1000).len(), 40);
    }

    #[test]
    fn empty_database_produces_empty_support() {
        let db = Database::new();
        let s = SupportSet::generate(&db, &SupportConfig::with_size(10));
        assert!(s.is_empty());
    }
}
