//! Conflict-set computation.
//!
//! For a buyer query `Q`, the conflict set `C_S(Q, D) = {D' ∈ S | Q(D) ≠ Q(D')}`
//! is the bundle of support databases the buyer can rule out after seeing the
//! answer. Conflict sets are the hyperedges handed to the pricing algorithms.
//!
//! Two engines are provided:
//!
//! * [`NaiveConflictEngine`] re-evaluates the query on every support database
//!   (lazily overlaid, never copied). Always correct; cost `O(|S| · eval)`.
//! * [`DeltaConflictEngine`] exploits the fact that every support database
//!   differs from `D` in a *single tuple*. For the single-table query shapes
//!   that dominate the paper's workloads (selection/projection chains, with
//!   or without `DISTINCT`, and grouping/aggregation on top of such chains)
//!   it decides membership by evaluating the chain on just the old and new
//!   versions of the perturbed tuple, falling back to the naive engine for
//!   joins, `LIMIT`, and other shapes. The two engines are proven equivalent
//!   by the property tests in `tests/proptest_conflict.rs`.

use std::collections::HashMap;

use qp_pricing::Hypergraph;
use qp_qdb::{Database, DeltaInstance, Query, Relation, Schema, Tuple, Value};

use crate::support::SupportSet;

/// A conflict-set engine bound to a database and a support set.
pub trait ConflictEngine {
    /// The indices (into the support set) of the databases in conflict with
    /// `query`'s answer on the base database.
    fn conflict_set(&self, query: &Query) -> Vec<usize>;

    /// Number of support databases.
    fn support_size(&self) -> usize;
}

/// Builds the pricing hypergraph for a batch of buyer queries: one hyperedge
/// per query, with a placeholder valuation of 0 (valuations are assigned by
/// the caller, typically from one of the paper's generative models).
pub fn build_hypergraph<E: ConflictEngine + ?Sized>(engine: &E, queries: &[Query]) -> Hypergraph {
    let mut h = Hypergraph::new(engine.support_size());
    for q in queries {
        let edge = engine.conflict_set(q);
        h.add_edge(edge, 0.0);
    }
    h
}

// ---------------------------------------------------------------------------
// Naive engine
// ---------------------------------------------------------------------------

/// The baseline engine: evaluate `Q` on every (lazily overlaid) support
/// database and compare answers under bag semantics.
pub struct NaiveConflictEngine<'a> {
    db: &'a Database,
    support: &'a SupportSet,
}

impl<'a> NaiveConflictEngine<'a> {
    /// Creates an engine over `db` and `support`.
    pub fn new(db: &'a Database, support: &'a SupportSet) -> Self {
        NaiveConflictEngine { db, support }
    }
}

impl ConflictEngine for NaiveConflictEngine<'_> {
    fn conflict_set(&self, query: &Query) -> Vec<usize> {
        let base = match query.evaluate(self.db) {
            Ok(r) => r,
            Err(_) => return Vec::new(),
        };
        let tables = query.tables_referenced();
        let mut conflict = Vec::new();
        for (i, delta) in self.support.deltas().iter().enumerate() {
            if !tables.contains(&delta.table) {
                continue; // the perturbation cannot influence the answer
            }
            let overlay = DeltaInstance::new(self.db, delta);
            match query.evaluate(&overlay) {
                Ok(ans) if ans.same_answer(&base) => {}
                _ => conflict.push(i),
            }
        }
        conflict
    }

    fn support_size(&self) -> usize {
        self.support.len()
    }
}

// ---------------------------------------------------------------------------
// Delta-aware engine
// ---------------------------------------------------------------------------

/// Structural classification of a query for the incremental fast paths.
enum Shape {
    /// `[Filter|Project]*` over a single `Scan`, no aggregate/distinct/limit:
    /// membership depends only on the per-row contribution of the perturbed
    /// tuple.
    Chain { table: String },
    /// `Distinct` on top of such a chain: additionally needs the multiplicity
    /// of each output row over the base database.
    DistinctChain { table: String, inner: Query },
    /// `Aggregate` (group-by + aggregates) on top of such a chain.
    AggregateChain {
        table: String,
        /// The chain below the aggregate (produces the aggregation input).
        input: Query,
        /// Names of the grouping columns in the chain output.
        group_by: Vec<String>,
    },
    /// Anything else (joins, LIMIT, nested aggregates, …).
    Other,
}

fn classify(q: &Query) -> Shape {
    fn chain_table(q: &Query) -> Option<String> {
        match q {
            Query::Scan { table } => Some(table.clone()),
            Query::Filter { input, .. } | Query::Project { input, .. } => chain_table(input),
            _ => None,
        }
    }
    match q {
        Query::Distinct { input } => match chain_table(input) {
            Some(table) => Shape::DistinctChain {
                table,
                inner: (**input).clone(),
            },
            None => Shape::Other,
        },
        Query::Aggregate {
            input, group_by, ..
        } => match chain_table(input) {
            Some(table) => Shape::AggregateChain {
                table,
                input: (**input).clone(),
                group_by: group_by.clone(),
            },
            None => Shape::Other,
        },
        other => match chain_table(other) {
            Some(table) => Shape::Chain { table },
            None => Shape::Other,
        },
    }
}

/// The delta-aware engine.
pub struct DeltaConflictEngine<'a> {
    db: &'a Database,
    support: &'a SupportSet,
    naive: NaiveConflictEngine<'a>,
}

impl<'a> DeltaConflictEngine<'a> {
    /// Creates an engine over `db` and `support`.
    pub fn new(db: &'a Database, support: &'a SupportSet) -> Self {
        DeltaConflictEngine {
            db,
            support,
            naive: NaiveConflictEngine::new(db, support),
        }
    }

    /// Builds a one-row database holding `row` as the only tuple of `table`
    /// (all other tables are dropped — valid because the chain reads only
    /// `table`).
    fn single_row_db(&self, table: &str, schema: &Schema, row: Tuple) -> Database {
        let mut rel = Relation::new(schema.clone());
        rel.push(row)
            .expect("schema arity mismatch in single_row_db");
        let mut db = Database::new();
        db.add_table(table, rel);
        db
    }

    /// The contribution of a single base-table row to a chain's output.
    fn contribution(&self, chain: &Query, table: &str, schema: &Schema, row: Tuple) -> Relation {
        let tiny = self.single_row_db(table, schema, row);
        chain
            .evaluate(&tiny)
            .expect("chain evaluation on a single-row database cannot fail")
    }
}

impl ConflictEngine for DeltaConflictEngine<'_> {
    fn conflict_set(&self, query: &Query) -> Vec<usize> {
        match classify(query) {
            Shape::Chain { table } => self.chain_conflicts(query, &table),
            Shape::DistinctChain { table, inner } => self.distinct_conflicts(query, &inner, &table),
            Shape::AggregateChain {
                table,
                input,
                group_by,
            } => self.aggregate_conflicts(query, &input, &group_by, &table),
            Shape::Other => self.naive.conflict_set(query),
        }
    }

    fn support_size(&self) -> usize {
        self.support.len()
    }
}

impl DeltaConflictEngine<'_> {
    /// Fast path for plain filter/project chains: the answer changes iff the
    /// perturbed tuple's contribution changes.
    fn chain_conflicts(&self, chain: &Query, table: &str) -> Vec<usize> {
        let Ok(schema) = self.db.table(table).map(|r| r.schema().clone()) else {
            return Vec::new();
        };
        let mut conflict = Vec::new();
        for (i, delta) in self.support.deltas().iter().enumerate() {
            if delta.table != table {
                continue;
            }
            let (Ok(old), Ok(new)) = (delta.old_tuple(self.db), delta.new_tuple(self.db)) else {
                continue;
            };
            let c_old = self.contribution(chain, table, &schema, old.clone());
            let c_new = self.contribution(chain, table, &schema, new);
            if !c_old.same_answer(&c_new) {
                conflict.push(i);
            }
        }
        conflict
    }

    /// Fast path for `DISTINCT` over a chain: the distinct set changes iff
    /// removing the old contribution or adding the new one changes membership.
    fn distinct_conflicts(&self, _query: &Query, inner: &Query, table: &str) -> Vec<usize> {
        let Ok(schema) = self.db.table(table).map(|r| r.schema().clone()) else {
            return Vec::new();
        };
        // Multiplicity of every output row of the chain over the base data.
        let Ok(full) = inner.evaluate(self.db) else {
            return Vec::new();
        };
        let mut counts: HashMap<Tuple, usize> = HashMap::with_capacity(full.len());
        for r in full.rows() {
            *counts.entry(r.clone()).or_insert(0) += 1;
        }

        let mut conflict = Vec::new();
        for (i, delta) in self.support.deltas().iter().enumerate() {
            if delta.table != table {
                continue;
            }
            let (Ok(old), Ok(new)) = (delta.old_tuple(self.db), delta.new_tuple(self.db)) else {
                continue;
            };
            let c_old = self.contribution(inner, table, &schema, old.clone());
            let c_new = self.contribution(inner, table, &schema, new);
            if c_old.same_answer(&c_new) {
                continue;
            }
            let removed_changes = c_old
                .rows()
                .iter()
                .any(|r| counts.get(r).copied().unwrap_or(0) == 1 && !c_new.rows().contains(r));
            let added_changes = c_new
                .rows()
                .iter()
                .any(|r| counts.get(r).copied().unwrap_or(0) == 0);
            if removed_changes || added_changes {
                conflict.push(i);
            }
        }
        conflict
    }

    /// Fast path for aggregation over a chain: only the groups touched by the
    /// perturbed tuple can change; recompute exactly those groups.
    fn aggregate_conflicts(
        &self,
        query: &Query,
        input: &Query,
        group_by: &[String],
        table: &str,
    ) -> Vec<usize> {
        let Ok(schema) = self.db.table(table).map(|r| r.schema().clone()) else {
            return Vec::new();
        };
        let Ok(agg_input) = input.evaluate(self.db) else {
            return Vec::new();
        };
        let Ok(base_output) = query.evaluate(self.db) else {
            return Vec::new();
        };
        let input_schema = agg_input.schema().clone();
        let key_idx: Vec<usize> = match group_by
            .iter()
            .map(|c| input_schema.index_of(c))
            .collect::<Result<Vec<_>, _>>()
        {
            Ok(v) => v,
            Err(_) => return self.naive.conflict_set(query),
        };
        let group_key =
            |row: &Tuple| -> Vec<Value> { key_idx.iter().map(|&i| row[i].clone()).collect() };

        // Aggregation-input rows grouped by key.
        let mut groups: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        for r in agg_input.rows() {
            groups.entry(group_key(r)).or_default().push(r.clone());
        }
        // Base output rows indexed by key (key columns are the first
        // `group_by.len()` output columns, see the evaluator).
        let k = group_by.len();
        let mut base_by_key: HashMap<Vec<Value>, Tuple> = HashMap::new();
        for r in base_output.rows() {
            base_by_key.insert(r[..k].to_vec(), r.clone());
        }

        // Rebuilds the aggregate output restricted to the rows of `rows`, by
        // evaluating the same Aggregate node over a temporary table that holds
        // exactly those aggregation-input rows.
        let recompute = |rows: Vec<Tuple>| -> Relation {
            let mut rel = Relation::new(input_schema.clone());
            for r in rows {
                rel.push(r).expect("aggregation input arity mismatch");
            }
            let mut tmp = Database::new();
            tmp.add_table("__agg_input", rel);
            let Query::Aggregate { group_by, aggs, .. } = query else {
                unreachable!("aggregate_conflicts is only called on Aggregate plans")
            };
            Query::Aggregate {
                input: Box::new(Query::scan("__agg_input")),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }
            .evaluate(&tmp)
            .expect("recomputing an aggregate over a temporary table cannot fail")
        };

        let mut conflict = Vec::new();
        for (i, delta) in self.support.deltas().iter().enumerate() {
            if delta.table != table {
                continue;
            }
            let (Ok(old), Ok(new)) = (delta.old_tuple(self.db), delta.new_tuple(self.db)) else {
                continue;
            };
            let c_old = self.contribution(input, table, &schema, old.clone());
            let c_new = self.contribution(input, table, &schema, new);
            if c_old.same_answer(&c_new) {
                continue;
            }

            // Affected group keys. A global aggregate (no group-by) has the
            // single key [].
            let mut keys: Vec<Vec<Value>> = Vec::new();
            if group_by.is_empty() {
                keys.push(Vec::new());
            } else {
                for r in c_old.rows().iter().chain(c_new.rows()) {
                    let key = group_key(r);
                    if !keys.contains(&key) {
                        keys.push(key);
                    }
                }
            }

            let mut changed = false;
            for key in &keys {
                // The group's rows with the old contribution swapped for the new.
                let mut rows: Vec<Tuple> = groups.get(key).cloned().unwrap_or_default();
                for o in c_old.rows() {
                    if group_by.is_empty() || &group_key(o) == key {
                        if let Some(pos) = rows.iter().position(|r| r == o) {
                            rows.remove(pos);
                        }
                    }
                }
                for nrow in c_new.rows() {
                    if group_by.is_empty() || &group_key(nrow) == key {
                        rows.push(nrow.clone());
                    }
                }
                let recomputed = recompute(rows);
                let base_row = base_by_key.get(key);
                match (recomputed.rows().first(), base_row) {
                    (Some(a), Some(b)) => {
                        if a != b {
                            changed = true;
                        }
                    }
                    (None, None) => {}
                    // A group appeared or disappeared.
                    _ => changed = true,
                }
                if changed {
                    break;
                }
            }
            if changed {
                conflict.push(i);
            }
        }
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::SupportConfig;
    use qp_qdb::{AggFunc, ColumnType, Expr};

    fn world_like_db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("continent", ColumnType::Str),
            ("population", ColumnType::Int),
        ]));
        let continents = ["Asia", "Europe", "Africa"];
        for i in 0..60 {
            rel.push(vec![
                format!("country{i}").into(),
                continents[i % 3].into(),
                Value::Int(1000 + (i as i64) * 37),
            ])
            .unwrap();
        }
        let mut db = Database::new();
        db.add_table("Country", rel);
        db
    }

    fn queries() -> Vec<Query> {
        vec![
            // Selection + projection chain.
            Query::scan("Country")
                .filter(Expr::col("continent").eq(Expr::lit("Asia")))
                .project_cols(&["name"]),
            // Distinct chain.
            Query::scan("Country")
                .project_cols(&["continent"])
                .distinct(),
            // Global aggregate.
            Query::scan("Country")
                .filter(Expr::col("population").gt(Expr::lit(1500)))
                .aggregate(vec![], vec![(AggFunc::Count, None, "c")]),
            // Group-by aggregate.
            Query::scan("Country").aggregate(
                vec!["continent"],
                vec![(AggFunc::Max, Some("population"), "mx")],
            ),
            // Full scan.
            Query::scan("Country"),
        ]
    }

    #[test]
    fn delta_engine_matches_naive_engine() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(120));
        let naive = NaiveConflictEngine::new(&db, &support);
        let fast = DeltaConflictEngine::new(&db, &support);
        for q in queries() {
            let a = naive.conflict_set(&q);
            let b = fast.conflict_set(&q);
            assert_eq!(
                a,
                b,
                "engines disagree on {:?}",
                qp_qdb::pretty::render_plan(&q)
            );
        }
    }

    #[test]
    fn join_queries_fall_back_to_naive() {
        let mut db = world_like_db();
        let mut city = Relation::new(Schema::new(vec![
            ("cname", ColumnType::Str),
            ("country", ColumnType::Str),
        ]));
        for i in 0..30 {
            city.push(vec![
                format!("city{i}").into(),
                format!("country{}", i * 2).into(),
            ])
            .unwrap();
        }
        db.add_table("City", city);
        let support = SupportSet::generate(&db, &SupportConfig::with_size(80));
        let q = Query::scan("Country")
            .join(Query::scan("City"), vec![("name", "country")])
            .aggregate(vec![], vec![(AggFunc::Count, None, "c")]);
        let naive = NaiveConflictEngine::new(&db, &support);
        let fast = DeltaConflictEngine::new(&db, &support);
        assert_eq!(naive.conflict_set(&q), fast.conflict_set(&q));
    }

    #[test]
    fn deltas_on_unrelated_tables_never_conflict() {
        let mut db = world_like_db();
        let mut other = Relation::new(Schema::new(vec![("x", ColumnType::Int)]));
        for i in 0..20 {
            other.push(vec![Value::Int(i)]).unwrap();
        }
        db.add_table("Other", other);
        let support = SupportSet::generate(&db, &SupportConfig::with_size(100));
        let q = Query::scan("Other").aggregate(vec![], vec![(AggFunc::Sum, Some("x"), "s")]);
        let naive = NaiveConflictEngine::new(&db, &support);
        for &i in &naive.conflict_set(&q) {
            assert_eq!(support.deltas()[i].table, "Other");
        }
    }

    #[test]
    fn build_hypergraph_has_one_edge_per_query() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(60));
        let engine = DeltaConflictEngine::new(&db, &support);
        let qs = queries();
        let h = build_hypergraph(&engine, &qs);
        assert_eq!(h.num_edges(), qs.len());
        assert_eq!(h.num_items(), 60);
        // The full-table scan conflicts with every delta on Country.
        let full_scan_edge = h.edge(4);
        let country_deltas = support
            .deltas()
            .iter()
            .filter(|d| d.table == "Country")
            .count();
        assert_eq!(full_scan_edge.size(), country_deltas);
    }

    #[test]
    fn selective_queries_have_smaller_conflict_sets() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(150));
        let engine = DeltaConflictEngine::new(&db, &support);
        let narrow = Query::scan("Country")
            .filter(Expr::col("name").eq(Expr::lit("country3")))
            .project_cols(&["population"]);
        let broad = Query::scan("Country");
        let narrow_set = engine.conflict_set(&narrow);
        let broad_set = engine.conflict_set(&broad);
        assert!(narrow_set.len() < broad_set.len());
        // Everything that conflicts with the narrow query also conflicts with
        // the full scan (information monotonicity at the conflict-set level).
        for i in narrow_set {
            assert!(broad_set.contains(&i));
        }
    }
}
