//! Conflict-set computation.
//!
//! For a buyer query `Q`, the conflict set `C_S(Q, D) = {D' ∈ S | Q(D) ≠ Q(D')}`
//! is the bundle of support databases the buyer can rule out after seeing the
//! answer. Conflict sets are the hyperedges handed to the pricing algorithms,
//! and they are represented as [`ItemSet`] bitsets (`qp-core`): one bit per
//! support database, so membership tests are O(1) and the downstream pricing
//! algebra (union, subset, popcount) is block-wise over u64 words.
//!
//! Three engines are provided:
//!
//! * [`NaiveConflictEngine`] re-evaluates the query on every support database
//!   (lazily overlaid, never copied). Always correct; cost `O(|S| · eval)`.
//!   An evaluation error counts as "answers differ" only when **exactly one**
//!   of `Q(D)` / `Q(D')` fails; when both sides fail, the buyer learns
//!   nothing that distinguishes them, so the delta is not a conflict.
//! * [`DeltaConflictEngine`] exploits the fact that every support database
//!   differs from `D` in a *single tuple*. For the single-table query shapes
//!   that dominate the paper's workloads (selection/projection chains, with
//!   or without `DISTINCT`, and grouping/aggregation on top of such chains)
//!   it decides membership by evaluating the chain on just the old and new
//!   versions of the perturbed tuple, falling back to the naive engine for
//!   joins, `LIMIT`, and other shapes. The two engines are proven equivalent
//!   by the property tests in `tests/proptest_conflict.rs`.
//! * [`ParallelConflictEngine`] fans a query batch across scoped worker
//!   threads, each running its own [`DeltaConflictEngine`]; workers claim
//!   queries from a shared `parking_lot`-guarded ledger so expensive queries
//!   do not serialize behind a static partition. Single-query calls and the
//!   degenerate one-thread case take the serial path unchanged.

use std::collections::HashMap;

use qp_core::{ItemSet, QuoteScratch};
use qp_pricing::Hypergraph;
use qp_qdb::{Database, DeltaInstance, QdbError, Query, Relation, Schema, Tuple, Value};

use crate::parallel::claim_map_into;
use crate::support::SupportSet;

/// A conflict-set engine bound to a database and a support set.
pub trait ConflictEngine {
    /// The indices (into the support set) of the databases in conflict with
    /// `query`'s answer on the base database.
    ///
    /// The default allocates a fresh set and delegates to
    /// [`ConflictEngine::conflict_set_into`].
    fn conflict_set(&self, query: &Query) -> ItemSet {
        let mut out = ItemSet::new();
        self.conflict_set_into(query, &mut out);
        out
    }

    /// Computes the conflict set into a caller-owned set, clearing it first.
    ///
    /// This is the allocation-free entry point of the hot quote path: `out`
    /// keeps any spilled block buffer across calls (see
    /// [`ItemSet::clear`]), so recycled sets from a `qp_core::BlockArena`
    /// make repeated batches allocation-free in steady state.
    fn conflict_set_into(&self, query: &Query, out: &mut ItemSet);

    /// Number of support databases.
    fn support_size(&self) -> usize;

    /// Conflict sets for a batch of queries, in query order.
    ///
    /// The default maps [`ConflictEngine::conflict_set`] serially;
    /// [`ParallelConflictEngine`] overrides it to fan the batch across
    /// threads.
    fn conflict_sets(&self, queries: &[Query]) -> Vec<ItemSet> {
        queries.iter().map(|q| self.conflict_set(q)).collect()
    }
}

/// Builds the pricing hypergraph for a batch of buyer queries: one hyperedge
/// per query, with a placeholder valuation of 0 (valuations are assigned by
/// the caller, typically from one of the paper's generative models). Goes
/// through [`ConflictEngine::conflict_sets`], so a parallel engine
/// parallelizes hypergraph construction for free.
pub fn build_hypergraph<E: ConflictEngine + ?Sized>(engine: &E, queries: &[Query]) -> Hypergraph {
    let mut h = Hypergraph::new(engine.support_size());
    for edge in engine.conflict_sets(queries) {
        h.add_edge_set(edge, 0.0);
    }
    h
}

// ---------------------------------------------------------------------------
// Naive engine
// ---------------------------------------------------------------------------

/// The baseline engine: evaluate `Q` on every (lazily overlaid) support
/// database and compare answers under bag semantics.
pub struct NaiveConflictEngine<'a> {
    db: &'a Database,
    support: &'a SupportSet,
}

impl<'a> NaiveConflictEngine<'a> {
    /// Creates an engine over `db` and `support`.
    pub fn new(db: &'a Database, support: &'a SupportSet) -> Self {
        NaiveConflictEngine { db, support }
    }
}

impl ConflictEngine for NaiveConflictEngine<'_> {
    fn conflict_set(&self, query: &Query) -> ItemSet {
        let mut out = ItemSet::with_capacity(self.support.len());
        self.conflict_set_into(query, &mut out);
        out
    }

    fn conflict_set_into(&self, query: &Query, out: &mut ItemSet) {
        out.clear();
        let base = query.evaluate(self.db);
        let tables = query.tables_referenced();
        for (i, delta) in self.support.deltas().iter().enumerate() {
            if !tables.contains(&delta.table) {
                continue; // the perturbation cannot influence the answer
            }
            let overlay = DeltaInstance::new(self.db, delta);
            if answers_differ(&base, &query.evaluate(&overlay)) {
                out.insert(i);
            }
        }
    }

    fn support_size(&self) -> usize {
        self.support.len()
    }
}

/// Decides `Q(D) ≠ Q(D')` from the two evaluation results, treating
/// evaluation errors symmetrically: an error counts as "answers differ" only
/// when exactly one side fails. When both sides fail, the buyer observes the
/// same failure either way and cannot distinguish the instances.
///
/// (Before this was factored out, a failing base evaluation produced an empty
/// conflict set while a failing overlay evaluation counted as a conflict —
/// the asymmetry fixed by this helper.)
fn answers_differ(base: &Result<Relation, QdbError>, overlay: &Result<Relation, QdbError>) -> bool {
    match (base, overlay) {
        (Ok(b), Ok(o)) => !o.same_answer(b),
        (Err(_), Err(_)) => false,
        _ => true,
    }
}

// ---------------------------------------------------------------------------
// Delta-aware engine
// ---------------------------------------------------------------------------

/// Structural classification of a query for the incremental fast paths.
enum Shape {
    /// `[Filter|Project]*` over a single `Scan`, no aggregate/distinct/limit:
    /// membership depends only on the per-row contribution of the perturbed
    /// tuple.
    Chain { table: String },
    /// `Distinct` on top of such a chain: additionally needs the multiplicity
    /// of each output row over the base database.
    DistinctChain { table: String, inner: Query },
    /// `Aggregate` (group-by + aggregates) on top of such a chain.
    AggregateChain {
        table: String,
        /// The chain below the aggregate (produces the aggregation input).
        input: Query,
        /// Names of the grouping columns in the chain output.
        group_by: Vec<String>,
    },
    /// Anything else (joins, LIMIT, nested aggregates, …).
    Other,
}

fn classify(q: &Query) -> Shape {
    fn chain_table(q: &Query) -> Option<String> {
        match q {
            Query::Scan { table } => Some(table.clone()),
            Query::Filter { input, .. } | Query::Project { input, .. } => chain_table(input),
            _ => None,
        }
    }
    match q {
        Query::Distinct { input } => match chain_table(input) {
            Some(table) => Shape::DistinctChain {
                table,
                inner: (**input).clone(),
            },
            None => Shape::Other,
        },
        Query::Aggregate {
            input, group_by, ..
        } => match chain_table(input) {
            Some(table) => Shape::AggregateChain {
                table,
                input: (**input).clone(),
                group_by: group_by.clone(),
            },
            None => Shape::Other,
        },
        other => match chain_table(other) {
            Some(table) => Shape::Chain { table },
            None => Shape::Other,
        },
    }
}

/// The delta-aware engine.
pub struct DeltaConflictEngine<'a> {
    db: &'a Database,
    support: &'a SupportSet,
    naive: NaiveConflictEngine<'a>,
}

impl<'a> DeltaConflictEngine<'a> {
    /// Creates an engine over `db` and `support`.
    pub fn new(db: &'a Database, support: &'a SupportSet) -> Self {
        DeltaConflictEngine {
            db,
            support,
            naive: NaiveConflictEngine::new(db, support),
        }
    }

    /// Builds a one-row database holding `row` as the only tuple of `table`
    /// (all other tables are dropped — valid because the chain reads only
    /// `table`).
    fn single_row_db(&self, table: &str, schema: &Schema, row: Tuple) -> Database {
        let mut rel = Relation::new(schema.clone());
        rel.push(row)
            .expect("schema arity mismatch in single_row_db");
        let mut db = Database::new();
        db.add_table(table, rel);
        db
    }

    /// The contribution of a single base-table row to a chain's output.
    fn contribution(&self, chain: &Query, table: &str, schema: &Schema, row: Tuple) -> Relation {
        let tiny = self.single_row_db(table, schema, row);
        chain
            .evaluate(&tiny)
            .expect("chain evaluation on a single-row database cannot fail")
    }
}

impl ConflictEngine for DeltaConflictEngine<'_> {
    fn conflict_set(&self, query: &Query) -> ItemSet {
        let mut out = ItemSet::with_capacity(self.support.len());
        self.conflict_set_into(query, &mut out);
        out
    }

    fn conflict_set_into(&self, query: &Query, out: &mut ItemSet) {
        out.clear();
        match classify(query) {
            Shape::Chain { table } => self.chain_conflicts(query, &table, out),
            Shape::DistinctChain { table, inner } => {
                self.distinct_conflicts(query, &inner, &table, out)
            }
            Shape::AggregateChain {
                table,
                input,
                group_by,
            } => self.aggregate_conflicts(query, &input, &group_by, &table, out),
            Shape::Other => self.naive.conflict_set_into(query, out),
        }
    }

    fn support_size(&self) -> usize {
        self.support.len()
    }
}

impl DeltaConflictEngine<'_> {
    /// Fast path for plain filter/project chains: the answer changes iff the
    /// perturbed tuple's contribution changes. Fills `out` (already cleared
    /// by [`ConflictEngine::conflict_set_into`]).
    fn chain_conflicts(&self, chain: &Query, table: &str, out: &mut ItemSet) {
        let Ok(schema) = self.db.table(table).map(|r| r.schema().clone()) else {
            return;
        };
        // Evaluation errors are schema-driven, and overlays share the base
        // schema: a chain that fails on the base database fails identically
        // on every support database, so (per the symmetric error rule of
        // `answers_differ`) nothing is in conflict. Probe with an *empty*
        // relation carrying the real schema — binding runs before any row is
        // touched, so this surfaces the same errors in O(1) without scanning
        // the base table.
        let schema_probe = {
            let mut empty = Database::new();
            empty.add_table(table, Relation::new(schema.clone()));
            empty
        };
        if chain.evaluate(&schema_probe).is_err() {
            return;
        }
        for (i, delta) in self.support.deltas().iter().enumerate() {
            if delta.table != table {
                continue;
            }
            let (Ok(old), Ok(new)) = (delta.old_tuple(self.db), delta.new_tuple(self.db)) else {
                continue;
            };
            let c_old = self.contribution(chain, table, &schema, old.clone());
            let c_new = self.contribution(chain, table, &schema, new);
            if !c_old.same_answer(&c_new) {
                out.insert(i);
            }
        }
    }

    /// Fast path for `DISTINCT` over a chain: the distinct set changes iff
    /// removing the old contribution or adding the new one changes membership.
    /// Fills `out` (already cleared by [`ConflictEngine::conflict_set_into`]).
    fn distinct_conflicts(&self, _query: &Query, inner: &Query, table: &str, out: &mut ItemSet) {
        let Ok(schema) = self.db.table(table).map(|r| r.schema().clone()) else {
            return;
        };
        // Multiplicity of every output row of the chain over the base data.
        let Ok(full) = inner.evaluate(self.db) else {
            return;
        };
        let mut counts: HashMap<Tuple, usize> = HashMap::with_capacity(full.len());
        for r in full.rows() {
            *counts.entry(r.clone()).or_insert(0) += 1;
        }

        for (i, delta) in self.support.deltas().iter().enumerate() {
            if delta.table != table {
                continue;
            }
            let (Ok(old), Ok(new)) = (delta.old_tuple(self.db), delta.new_tuple(self.db)) else {
                continue;
            };
            let c_old = self.contribution(inner, table, &schema, old.clone());
            let c_new = self.contribution(inner, table, &schema, new);
            if c_old.same_answer(&c_new) {
                continue;
            }
            let removed_changes = c_old
                .rows()
                .iter()
                .any(|r| counts.get(r).copied().unwrap_or(0) == 1 && !c_new.rows().contains(r));
            let added_changes = c_new
                .rows()
                .iter()
                .any(|r| counts.get(r).copied().unwrap_or(0) == 0);
            if removed_changes || added_changes {
                out.insert(i);
            }
        }
    }

    /// Fast path for aggregation over a chain: only the groups touched by the
    /// perturbed tuple can change; recompute exactly those groups. Fills
    /// `out` (already cleared by [`ConflictEngine::conflict_set_into`]).
    fn aggregate_conflicts(
        &self,
        query: &Query,
        input: &Query,
        group_by: &[String],
        table: &str,
        out: &mut ItemSet,
    ) {
        let Ok(schema) = self.db.table(table).map(|r| r.schema().clone()) else {
            return;
        };
        let Ok(agg_input) = input.evaluate(self.db) else {
            return;
        };
        let Ok(base_output) = query.evaluate(self.db) else {
            return;
        };
        let input_schema = agg_input.schema().clone();
        let key_idx: Vec<usize> = match group_by
            .iter()
            .map(|c| input_schema.index_of(c))
            .collect::<Result<Vec<_>, _>>()
        {
            Ok(v) => v,
            Err(_) => return self.naive.conflict_set_into(query, out),
        };
        let group_key =
            |row: &Tuple| -> Vec<Value> { key_idx.iter().map(|&i| row[i].clone()).collect() };

        // Aggregation-input rows grouped by key.
        let mut groups: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        for r in agg_input.rows() {
            groups.entry(group_key(r)).or_default().push(r.clone());
        }
        // Base output rows indexed by key (key columns are the first
        // `group_by.len()` output columns, see the evaluator).
        let k = group_by.len();
        let mut base_by_key: HashMap<Vec<Value>, Tuple> = HashMap::new();
        for r in base_output.rows() {
            base_by_key.insert(r[..k].to_vec(), r.clone());
        }

        // Rebuilds the aggregate output restricted to the rows of `rows`, by
        // evaluating the same Aggregate node over a temporary table that holds
        // exactly those aggregation-input rows.
        let recompute = |rows: Vec<Tuple>| -> Relation {
            let mut rel = Relation::new(input_schema.clone());
            for r in rows {
                rel.push(r).expect("aggregation input arity mismatch");
            }
            let mut tmp = Database::new();
            tmp.add_table("__agg_input", rel);
            let Query::Aggregate { group_by, aggs, .. } = query else {
                unreachable!("aggregate_conflicts is only called on Aggregate plans")
            };
            Query::Aggregate {
                input: Box::new(Query::scan("__agg_input")),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }
            .evaluate(&tmp)
            .expect("recomputing an aggregate over a temporary table cannot fail")
        };

        for (i, delta) in self.support.deltas().iter().enumerate() {
            if delta.table != table {
                continue;
            }
            let (Ok(old), Ok(new)) = (delta.old_tuple(self.db), delta.new_tuple(self.db)) else {
                continue;
            };
            let c_old = self.contribution(input, table, &schema, old.clone());
            let c_new = self.contribution(input, table, &schema, new);
            if c_old.same_answer(&c_new) {
                continue;
            }

            // Affected group keys. A global aggregate (no group-by) has the
            // single key [].
            let mut keys: Vec<Vec<Value>> = Vec::new();
            if group_by.is_empty() {
                keys.push(Vec::new());
            } else {
                for r in c_old.rows().iter().chain(c_new.rows()) {
                    let key = group_key(r);
                    if !keys.contains(&key) {
                        keys.push(key);
                    }
                }
            }

            let mut changed = false;
            for key in &keys {
                // The group's rows with the old contribution swapped for the new.
                let mut rows: Vec<Tuple> = groups.get(key).cloned().unwrap_or_default();
                for o in c_old.rows() {
                    if group_by.is_empty() || &group_key(o) == key {
                        if let Some(pos) = rows.iter().position(|r| r == o) {
                            rows.remove(pos);
                        }
                    }
                }
                for nrow in c_new.rows() {
                    if group_by.is_empty() || &group_key(nrow) == key {
                        rows.push(nrow.clone());
                    }
                }
                let recomputed = recompute(rows);
                let base_row = base_by_key.get(key);
                match (recomputed.rows().first(), base_row) {
                    (Some(a), Some(b)) => {
                        if a != b {
                            changed = true;
                        }
                    }
                    (None, None) => {}
                    // A group appeared or disappeared.
                    _ => changed = true,
                }
                if changed {
                    break;
                }
            }
            if changed {
                out.insert(i);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel engine
// ---------------------------------------------------------------------------

/// A batch-parallel conflict engine: [`ConflictEngine::conflict_sets`] fans
/// the queries across `std::thread::scope` workers, each running its own
/// [`DeltaConflictEngine`] over the shared (read-only) database and support.
///
/// Work distribution is dynamic: workers claim the next unprocessed query
/// from a shared ledger guarded by a `parking_lot` mutex, so a few expensive
/// queries (e.g. naive-fallback joins) do not leave the other threads idle.
/// Results land in the ledger at the query's index, preserving order.
///
/// Batches whose total work (queries × support size) is below a small
/// threshold take the serial path directly — thread spawn and ledger
/// round-trips would cost more than they save. The same reasoning clamps the
/// worker count to the hardware parallelism: whenever the effective thread
/// count is 1 (single-query calls, one-core machines, tiny batches), the
/// engine is exactly the serial [`DeltaConflictEngine`], regardless of work
/// size.
pub struct ParallelConflictEngine<'a> {
    db: &'a Database,
    support: &'a SupportSet,
    threads: usize,
}

impl<'a> ParallelConflictEngine<'a> {
    /// Creates an engine over `db` and `support` with one worker per
    /// available hardware thread.
    pub fn new(db: &'a Database, support: &'a SupportSet) -> Self {
        ParallelConflictEngine::with_threads(db, support, usize::MAX)
    }

    /// Creates an engine with at most `threads` workers (must be positive).
    ///
    /// The requested count is clamped to the available hardware parallelism:
    /// asking for more workers than the machine can run concurrently only
    /// adds spawn and ledger overhead (`BENCH_conflict.json` puts the forced
    /// 4-thread path at ≤1.06× serial — often *below* 1× — on a 1-core
    /// container), so the effective count on such a machine is 1 and batches
    /// take the serial path. Use
    /// [`ParallelConflictEngine::with_threads_forced`] to bypass the clamp
    /// for overhead measurements.
    pub fn with_threads(db: &'a Database, support: &'a SupportSet, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelConflictEngine::with_threads_forced(db, support, threads.min(hw))
    }

    /// Creates an engine with an *exact* worker count, bypassing the
    /// hardware-parallelism clamp of [`ParallelConflictEngine::with_threads`].
    ///
    /// This exists for benchmarks that measure threading overhead on
    /// undersized machines and for tests that must exercise the threaded
    /// path regardless of where they run; production callers should let the
    /// clamp do its job.
    pub fn with_threads_forced(db: &'a Database, support: &'a SupportSet, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        ParallelConflictEngine {
            db,
            support,
            threads,
        }
    }

    /// Number of worker threads a batch call will spawn (at most).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// [`ConflictEngine::conflict_sets`] writing through caller-owned
    /// scratch: the batch's conflict sets land in `scratch.sets` (cleared
    /// first, query order preserved).
    ///
    /// This is the arena-backed entry point `Broker::quote_batch` reuses
    /// across ticks. On the serial path every set is drawn from
    /// `scratch.arena`, so spilled block buffers recycled from earlier
    /// batches make steady-state quoting allocation-free. On the threaded
    /// path the `scratch.slots` claim ledger is reused across batches (the
    /// per-call allocation that used to dominate small batches), while the
    /// sets themselves are built by the scoped workers — per-worker arenas
    /// would not outlive the batch, since workers live only for one call.
    pub fn conflict_sets_scratch(&self, queries: &[Query], scratch: &mut QuoteScratch) {
        scratch.sets.clear();
        let workers = self.threads.min(queries.len());
        // Same serial/threaded split as `conflict_sets` (see below).
        if workers <= 1 || queries.len() * self.support.len() < PARALLEL_WORK_THRESHOLD {
            let engine = DeltaConflictEngine::new(self.db, self.support);
            scratch.sets.reserve(queries.len());
            for query in queries {
                let mut set = scratch.arena.take_set();
                engine.conflict_set_into(query, &mut set);
                scratch.sets.push(set);
            }
            return;
        }
        claim_map_into(
            queries,
            workers,
            || DeltaConflictEngine::new(self.db, self.support),
            |engine, query| engine.conflict_set(query),
            &mut scratch.slots,
        );
        scratch.sets.extend(
            scratch
                .slots
                .drain(..)
                .map(|s| s.expect("scoped workers drain every item")),
        );
    }
}

/// Minimum batch work (queries × support databases) before spawning worker
/// threads pays for itself; smaller batches take the serial path.
const PARALLEL_WORK_THRESHOLD: usize = 4096;

impl ConflictEngine for ParallelConflictEngine<'_> {
    /// Single-query calls take the serial delta-engine path; spawning threads
    /// for one conflict set would only add overhead.
    fn conflict_set(&self, query: &Query) -> ItemSet {
        DeltaConflictEngine::new(self.db, self.support).conflict_set(query)
    }

    fn conflict_set_into(&self, query: &Query, out: &mut ItemSet) {
        DeltaConflictEngine::new(self.db, self.support).conflict_set_into(query, out)
    }

    fn support_size(&self) -> usize {
        self.support.len()
    }

    /// Delegates to [`ParallelConflictEngine::conflict_sets_scratch`] with a
    /// throwaway scratch. One effective worker takes the serial path no
    /// matter how large the batch is — a second thread cannot exist to share
    /// the work, so spawn + ledger overhead would be pure loss. Multi-worker
    /// batches still fall back to serial below the work threshold.
    fn conflict_sets(&self, queries: &[Query]) -> Vec<ItemSet> {
        let mut scratch = QuoteScratch::new();
        self.conflict_sets_scratch(queries, &mut scratch);
        std::mem::take(&mut scratch.sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::SupportConfig;
    use qp_qdb::{AggFunc, ColumnType, Expr};

    fn world_like_db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("continent", ColumnType::Str),
            ("population", ColumnType::Int),
        ]));
        let continents = ["Asia", "Europe", "Africa"];
        for i in 0..60 {
            rel.push(vec![
                format!("country{i}").into(),
                continents[i % 3].into(),
                Value::Int(1000 + (i as i64) * 37),
            ])
            .unwrap();
        }
        let mut db = Database::new();
        db.add_table("Country", rel);
        db
    }

    fn queries() -> Vec<Query> {
        vec![
            // Selection + projection chain.
            Query::scan("Country")
                .filter(Expr::col("continent").eq(Expr::lit("Asia")))
                .project_cols(&["name"]),
            // Distinct chain.
            Query::scan("Country")
                .project_cols(&["continent"])
                .distinct(),
            // Global aggregate.
            Query::scan("Country")
                .filter(Expr::col("population").gt(Expr::lit(1500)))
                .aggregate(vec![], vec![(AggFunc::Count, None, "c")]),
            // Group-by aggregate.
            Query::scan("Country").aggregate(
                vec!["continent"],
                vec![(AggFunc::Max, Some("population"), "mx")],
            ),
            // Full scan.
            Query::scan("Country"),
        ]
    }

    #[test]
    fn delta_engine_matches_naive_engine() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(120));
        let naive = NaiveConflictEngine::new(&db, &support);
        let fast = DeltaConflictEngine::new(&db, &support);
        for q in queries() {
            let a = naive.conflict_set(&q);
            let b = fast.conflict_set(&q);
            assert_eq!(
                a,
                b,
                "engines disagree on {:?}",
                qp_qdb::pretty::render_plan(&q)
            );
        }
    }

    #[test]
    fn join_queries_fall_back_to_naive() {
        let mut db = world_like_db();
        let mut city = Relation::new(Schema::new(vec![
            ("cname", ColumnType::Str),
            ("country", ColumnType::Str),
        ]));
        for i in 0..30 {
            city.push(vec![
                format!("city{i}").into(),
                format!("country{}", i * 2).into(),
            ])
            .unwrap();
        }
        db.add_table("City", city);
        let support = SupportSet::generate(&db, &SupportConfig::with_size(80));
        let q = Query::scan("Country")
            .join(Query::scan("City"), vec![("name", "country")])
            .aggregate(vec![], vec![(AggFunc::Count, None, "c")]);
        let naive = NaiveConflictEngine::new(&db, &support);
        let fast = DeltaConflictEngine::new(&db, &support);
        assert_eq!(naive.conflict_set(&q), fast.conflict_set(&q));
    }

    #[test]
    fn deltas_on_unrelated_tables_never_conflict() {
        let mut db = world_like_db();
        let mut other = Relation::new(Schema::new(vec![("x", ColumnType::Int)]));
        for i in 0..20 {
            other.push(vec![Value::Int(i)]).unwrap();
        }
        db.add_table("Other", other);
        let support = SupportSet::generate(&db, &SupportConfig::with_size(100));
        let q = Query::scan("Other").aggregate(vec![], vec![(AggFunc::Sum, Some("x"), "s")]);
        let naive = NaiveConflictEngine::new(&db, &support);
        for i in naive.conflict_set(&q).iter() {
            assert_eq!(support.deltas()[i].table, "Other");
        }
    }

    #[test]
    fn evaluation_errors_are_treated_symmetrically() {
        // Regression: a failing base evaluation used to yield an empty
        // conflict set while a failing overlay evaluation counted as a
        // conflict. The decision is now symmetric — "answers differ" iff
        // exactly one side fails.
        let ok = |v: i64| -> Result<Relation, qp_qdb::QdbError> {
            let mut rel = Relation::new(Schema::new(vec![("x", ColumnType::Int)]));
            rel.push(vec![Value::Int(v)]).unwrap();
            Ok(rel)
        };
        let err = || -> Result<Relation, qp_qdb::QdbError> {
            Err(qp_qdb::QdbError::UnknownColumn("nope".into()))
        };
        assert!(!answers_differ(&ok(1), &ok(1)));
        assert!(answers_differ(&ok(1), &ok(2)));
        assert!(answers_differ(&ok(1), &err()), "only overlay fails");
        assert!(answers_differ(&err(), &ok(1)), "only base fails");
        assert!(!answers_differ(&err(), &err()), "both fail the same way");
    }

    #[test]
    fn queries_that_always_fail_have_empty_conflict_sets_in_both_engines() {
        // An unknown column fails on the base database and on every overlay
        // (deltas never change the schema), so under the symmetric rule the
        // conflict set is empty — and the delta engine agrees.
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(50));
        let q = Query::scan("Country").filter(Expr::col("no_such_column").eq(Expr::lit(1)));
        let naive = NaiveConflictEngine::new(&db, &support);
        let fast = DeltaConflictEngine::new(&db, &support);
        assert!(naive.conflict_set(&q).is_empty());
        assert_eq!(naive.conflict_set(&q), fast.conflict_set(&q));
    }

    #[test]
    fn parallel_engine_matches_serial_engines_query_by_query() {
        let db = world_like_db();
        // Large enough that queries × support clears the serial-fallback
        // threshold: the threaded path itself is under test.
        let support = SupportSet::generate(&db, &SupportConfig::with_size(900));
        let serial = DeltaConflictEngine::new(&db, &support);
        for threads in [1, 2, 5] {
            // Forced thread counts so the threaded path is exercised even on
            // a single-core machine, where `with_threads` would clamp to 1.
            let parallel = ParallelConflictEngine::with_threads_forced(&db, &support, threads);
            assert_eq!(parallel.support_size(), support.len());
            let qs = queries();
            let batch = parallel.conflict_sets(&qs);
            assert_eq!(batch.len(), qs.len());
            for (q, set) in qs.iter().zip(&batch) {
                assert_eq!(set, &serial.conflict_set(q), "threads={threads}");
                assert_eq!(set, &parallel.conflict_set(q), "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_hypergraph_matches_the_serial_hypergraph() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(850));
        let qs = queries();
        let serial = build_hypergraph(&DeltaConflictEngine::new(&db, &support), &qs);
        let parallel = build_hypergraph(
            &ParallelConflictEngine::with_threads_forced(&db, &support, 4),
            &qs,
        );
        assert_eq!(serial.num_items(), parallel.num_items());
        assert_eq!(serial.num_edges(), parallel.num_edges());
        for i in 0..serial.num_edges() {
            assert_eq!(serial.edge(i).items, parallel.edge(i).items);
        }
    }

    #[test]
    fn requested_threads_are_clamped_to_hardware_parallelism() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(20));
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // `new` and over-asking `with_threads` both land on the hardware
        // count; `with_threads_forced` keeps the exact request.
        assert_eq!(ParallelConflictEngine::new(&db, &support).threads(), hw);
        assert_eq!(
            ParallelConflictEngine::with_threads(&db, &support, usize::MAX).threads(),
            hw
        );
        assert_eq!(
            ParallelConflictEngine::with_threads(&db, &support, 1).threads(),
            1
        );
        assert_eq!(
            ParallelConflictEngine::with_threads_forced(&db, &support, 64).threads(),
            64
        );
    }

    #[test]
    fn build_hypergraph_has_one_edge_per_query() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(60));
        let engine = DeltaConflictEngine::new(&db, &support);
        let qs = queries();
        let h = build_hypergraph(&engine, &qs);
        assert_eq!(h.num_edges(), qs.len());
        assert_eq!(h.num_items(), 60);
        // The full-table scan conflicts with every delta on Country.
        let full_scan_edge = h.edge(4);
        let country_deltas = support
            .deltas()
            .iter()
            .filter(|d| d.table == "Country")
            .count();
        assert_eq!(full_scan_edge.size(), country_deltas);
    }

    #[test]
    fn selective_queries_have_smaller_conflict_sets() {
        let db = world_like_db();
        let support = SupportSet::generate(&db, &SupportConfig::with_size(150));
        let engine = DeltaConflictEngine::new(&db, &support);
        let narrow = Query::scan("Country")
            .filter(Expr::col("name").eq(Expr::lit("country3")))
            .project_cols(&["population"]);
        let broad = Query::scan("Country");
        let narrow_set = engine.conflict_set(&narrow);
        let broad_set = engine.conflict_set(&broad);
        assert!(narrow_set.len() < broad_set.len());
        // Everything that conflicts with the narrow query also conflicts with
        // the full scan (information monotonicity at the conflict-set level).
        assert!(narrow_set.is_subset(&broad_set));
    }
}
