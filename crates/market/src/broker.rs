//! The broker: a concurrent, end-to-end query-pricing engine.
//!
//! A [`Broker`] owns the seller's database, a sampled support set, and a
//! pricing function, and exposes the operations a data marketplace needs:
//! quote a price for an incoming query (singly or in batches), execute a
//! purchase (returning the answer when the buyer can afford it), and keep a
//! per-sale revenue ledger. The pricing function lives behind a
//! [`parking_lot::RwLock`], so a live broker can be **re-priced under read
//! traffic**: `set_pricing(&self, ...)` takes a shared reference and swaps
//! the function atomically while other threads keep quoting.
//!
//! Brokers are assembled with [`BrokerBuilder`]: database → support set →
//! pricing algorithm selected from the [`qp_pricing::algorithms`] registry
//! by name → anticipated buyer queries with valuations. `build()` computes
//! the conflict-set hypergraph of the anticipated queries (fanned across the
//! [`ParallelConflictEngine`]'s workers), runs the selected algorithm on it,
//! and installs the resulting pricing. Quotes carry their conflict set as a
//! [`qp_core::ItemSet`] bitset and are priced through
//! [`BundlePricing::price_set`] without materializing index vectors.
//!
//! # The pricing epoch and the cache-invalidation contract
//!
//! Every observable change to the installed pricing — a wholesale
//! [`Broker::set_pricing`] swap or an incremental [`Broker::apply_delta`]
//! patch (other than `PricingPatch::Keep`, which changes nothing) —
//! increments a monotone **pricing epoch**, readable with
//! [`Broker::pricing_epoch`]. The counter is bumped *while holding the same
//! write lock* that guards the pricing, which gives layered caches (e.g.
//! `qp-server`'s per-shard quote caches) a precise contract:
//!
//! 1. A cached price tagged with epoch `e` may be served as long as
//!    `pricing_epoch() == e`. Any repricing strictly increases the epoch,
//!    so a tag mismatch detects **every** pricing change — there is no
//!    ABA window.
//! 2. [`Broker::versioned_price`] returns a `(price, epoch)` pair that is
//!    *atomically consistent*: it reads the epoch while holding the pricing
//!    read lock, and writers bump the epoch while holding the write lock,
//!    so the pair can never mix one epoch's price with another's tag. Fill
//!    caches only from this method.
//! 3. The epoch says nothing about *quotes already issued*: a quote is
//!    honored at its quoted price ([`Broker::settle`]) even if the epoch
//!    has moved on. Invalidation applies to caches, not to contracts with
//!    buyers.
//!
//! # Lock-order and epoch discipline (machine-checked)
//!
//! The rules this module relies on — verified by the `qp-verify` model
//! checker (`cargo run --release -p qp-verify`, models `no-stale-quote`
//! and `rw-atomicity`) and enforced going forward by `qp-lint`:
//!
//! * **The epoch moves only inside the pricing write-lock critical
//!   section** (`set_pricing` / `apply_delta`). Bumping it anywhere else
//!   reopens the stale-quote race the checker's seeded-bug model
//!   demonstrates (lint rule `epoch-outside-lock`).
//! * **Epoch reads that tag a price must happen under the pricing read
//!   lock** — that is what makes `versioned_price`'s pair consistent.
//!   A bare `pricing_epoch()` is only a freshness hint.
//! * **Lock order**: the pricing lock is a leaf — no other lock in this
//!   crate is acquired while it is held. Callers layering caches on top
//!   (e.g. `qp-server`'s shards) must release their cache locks before
//!   calling into the broker, or take them strictly after the broker call
//!   returns.
//! * **Synchronization goes through the `parking_lot` facade** (including
//!   its `atomic` module), never `std::sync` directly, so
//!   `--cfg qp_verify` builds can interpose the checker's instrumented
//!   shims on production code (lint rule `std-sync`).

use parking_lot::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock, RwLockReadGuard};

use qp_core::{ItemSet, QuoteScratch};
use qp_pricing::algorithms::{self, CipConfig, LpipConfig, PricingPatch};
use qp_pricing::{BundlePricing, Hypergraph, Pricing};
use qp_qdb::{Database, QdbError, Query, Relation};
use qp_store::{SharedStore, WalRecord};
use qp_telemetry::{Counter, SpanHandle, TelemetrySink};

use crate::conflict::{ConflictEngine, DeltaConflictEngine, ParallelConflictEngine};
use crate::support::{SupportConfig, SupportSet};

/// A priced query quote.
#[derive(Debug, Clone)]
pub struct QuotedQuery {
    /// The conflict set of the query (the bundle being priced).
    pub conflict_set: ItemSet,
    /// The quoted price.
    pub price: f64,
}

/// The result of a purchase attempt.
#[derive(Debug, Clone)]
pub enum PurchaseOutcome {
    /// The buyer's budget covered the price; the answer is released.
    Sold {
        /// The price charged.
        price: f64,
        /// The query answer.
        answer: Relation,
    },
    /// The quoted price exceeded the buyer's budget; nothing is released.
    Declined {
        /// The price that was quoted.
        price: f64,
    },
}

/// One completed sale, as recorded by the broker's [`RevenueLedger`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sale {
    /// Size of the sold query's conflict set (the bundle size `|e|`).
    pub conflict_set_len: usize,
    /// The price the buyer paid.
    pub price: f64,
    /// The simulation tick at which the sale closed; 0 for purchases made
    /// outside a simulator (see [`Broker::purchase_at`]). Stamping sales
    /// with their tick lets revenue-over-time be reconstructed from the
    /// ledger alone.
    pub tick: u64,
}

/// The broker's record of demand: one [`Sale`] per purchase, plus the count
/// and forgone revenue of declined quotes.
///
/// Keeping `(conflict_set_len, price, tick)` per sale instead of a single
/// running total lets operators ask distributional questions after the fact —
/// e.g. how revenue splits between broad and narrow queries, or how it
/// accrued over a simulated traffic stream — without re-running the
/// workload. Declines are aggregated (count + sum of quoted prices) rather
/// than itemized: they exist to measure conversion and the revenue left on
/// the table, not to audit individual buyers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RevenueLedger {
    sales: Vec<Sale>,
    declined_count: usize,
    declined_total: f64,
}

impl RevenueLedger {
    /// Records a completed sale outside any simulation (tick 0).
    pub fn record(&mut self, conflict_set_len: usize, price: f64) {
        self.record_at(conflict_set_len, price, 0);
    }

    /// Records a completed sale at a simulation tick.
    pub fn record_at(&mut self, conflict_set_len: usize, price: f64, tick: u64) {
        self.sales.push(Sale {
            conflict_set_len,
            price,
            tick,
        });
    }

    /// Records a declined quote: the buyer walked away from `price`.
    pub fn record_decline(&mut self, price: f64) {
        self.declined_count += 1;
        self.declined_total += price;
    }

    /// Total revenue across all recorded sales.
    pub fn total(&self) -> f64 {
        self.sales.iter().map(|s| s.price).sum()
    }

    /// Number of recorded sales.
    pub fn len(&self) -> usize {
        self.sales.len()
    }

    /// True if nothing has been sold yet.
    pub fn is_empty(&self) -> bool {
        self.sales.is_empty()
    }

    /// The recorded sales, in purchase order.
    pub fn sales(&self) -> &[Sale] {
        &self.sales
    }

    /// Number of declined quotes.
    pub fn declined_count(&self) -> usize {
        self.declined_count
    }

    /// Sum of the prices buyers declined to pay (revenue left on the table).
    pub fn declined_total(&self) -> f64 {
        self.declined_total
    }

    /// Reconstructs a ledger from recovered parts: the sales in their
    /// original order (`total()` re-sums float prices in insertion order,
    /// so preserving it makes the total bit-identical) plus the aggregated
    /// decline tallies. Crash recovery uses this; see `qp-store`.
    pub fn from_parts(sales: Vec<Sale>, declined_count: usize, declined_total: f64) -> Self {
        RevenueLedger {
            sales,
            declined_count,
            declined_total,
        }
    }

    /// Fraction of purchase attempts that closed, or `None` before any
    /// attempt has been recorded.
    pub fn conversion_rate(&self) -> Option<f64> {
        let attempts = self.sales.len() + self.declined_count;
        if attempts == 0 {
            None
        } else {
            Some(self.sales.len() as f64 / attempts as f64)
        }
    }
}

/// Errors from [`BrokerBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerBuildError {
    /// The requested pricing algorithm is not in the registry.
    UnknownAlgorithm(String),
}

impl std::fmt::Display for BrokerBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerBuildError::UnknownAlgorithm(name) => {
                write!(f, "unknown pricing algorithm {name:?}; see qp_pricing::algorithms::PAPER_ALGORITHMS")
            }
        }
    }
}

impl std::error::Error for BrokerBuildError {}

/// Step-by-step construction of a [`Broker`].
///
/// ```no_run
/// # use qp_market::{Broker, SupportConfig};
/// # use qp_qdb::{Database, Query};
/// # let db = Database::new();
/// let broker = Broker::builder(db)
///     .support_config(SupportConfig::with_size(500))
///     .algorithm("LPIP")
///     .anticipate(Query::scan("User"), 25.0)
///     .build()
///     .expect("LPIP is a registered algorithm");
/// ```
pub struct BrokerBuilder {
    db: Database,
    support: Option<SupportSet>,
    support_config: SupportConfig,
    algorithm: Option<String>,
    lpip: LpipConfig,
    cip: CipConfig,
    anticipated: Vec<(Query, f64)>,
    telemetry: TelemetrySink,
    store: Option<SharedStore>,
}

impl BrokerBuilder {
    /// Starts a builder over the seller's database.
    pub fn new(db: Database) -> BrokerBuilder {
        BrokerBuilder {
            db,
            support: None,
            support_config: SupportConfig::default(),
            algorithm: None,
            lpip: LpipConfig::default(),
            cip: CipConfig::default(),
            anticipated: Vec::new(),
            telemetry: TelemetrySink::Disabled,
            store: None,
        }
    }

    /// Attaches a durability store: once the broker is built, every settle
    /// and every observable repricing appends a WAL record **before** the
    /// call returns (see `qp-store`). The builder's own initial pricing
    /// install is deliberately *not* logged — it is deterministic from the
    /// build inputs, and recovery re-derives it by rebuilding the broker
    /// the same way before replaying the log.
    pub fn store(mut self, store: SharedStore) -> BrokerBuilder {
        self.store = Some(store);
        self
    }

    /// Attaches a telemetry sink: quote/reprice/settle stages record spans
    /// and counters into it. The default is `TelemetrySink::Disabled`,
    /// whose handles are inert (no clock reads, no atomics) — telemetry is
    /// strictly out-of-band either way and never affects prices, RNG, or
    /// revenue.
    pub fn telemetry(mut self, sink: TelemetrySink) -> BrokerBuilder {
        self.telemetry = sink;
        self
    }

    /// Samples the support set with `config` (ignored if [`Self::support`]
    /// provides a pre-generated one).
    pub fn support_config(mut self, config: SupportConfig) -> BrokerBuilder {
        self.support_config = config;
        self
    }

    /// Uses a pre-generated support set instead of sampling one.
    pub fn support(mut self, support: SupportSet) -> BrokerBuilder {
        self.support = Some(support);
        self
    }

    /// Selects the pricing algorithm by its registry name (e.g. `"LPIP"`;
    /// see [`algorithms::PAPER_ALGORITHMS`]). Without an algorithm the broker
    /// starts with the all-zero pricing.
    pub fn algorithm(mut self, name: impl Into<String>) -> BrokerBuilder {
        self.algorithm = Some(name.into());
        self
    }

    /// Tunes the LP-based algorithms (LPIP / CIP / XOS) selected by
    /// [`Self::algorithm`].
    pub fn lp_configs(mut self, lpip: LpipConfig, cip: CipConfig) -> BrokerBuilder {
        self.lpip = lpip;
        self.cip = cip;
        self
    }

    /// Registers an anticipated buyer query and its expected valuation; the
    /// selected algorithm prices against the hypergraph of these queries.
    pub fn anticipate(mut self, query: Query, valuation: f64) -> BrokerBuilder {
        self.anticipated.push((query, valuation));
        self
    }

    /// Registers many anticipated `(query, valuation)` pairs at once.
    pub fn anticipate_all(
        mut self,
        queries: impl IntoIterator<Item = (Query, f64)>,
    ) -> BrokerBuilder {
        self.anticipated.extend(queries);
        self
    }

    /// Builds the broker: samples the support (unless given), computes the
    /// conflict-set hypergraph of the anticipated queries, runs the selected
    /// algorithm, and installs its pricing.
    pub fn build(self) -> Result<Broker, BrokerBuildError> {
        let algorithm = match &self.algorithm {
            Some(name) => Some(
                algorithms::by_name_with(name, &self.lpip, &self.cip)
                    .ok_or_else(|| BrokerBuildError::UnknownAlgorithm(name.clone()))?,
            ),
            None => None,
        };

        let support = match self.support {
            Some(s) => s,
            None => SupportSet::generate(&self.db, &self.support_config),
        };
        let broker = Broker::with_support(self.db, support).with_telemetry(self.telemetry);

        if let Some(algo) = algorithm {
            // The anticipated workload is a batch, so the conflict sets fan
            // out across the parallel engine's workers.
            let engine = ParallelConflictEngine::new(&broker.db, &broker.support);
            let queries: Vec<Query> = self.anticipated.iter().map(|(q, _)| q.clone()).collect();
            let conflict_sets = engine.conflict_sets(&queries);
            let mut h = Hypergraph::new(broker.support().len());
            for (set, (_, v)) in conflict_sets.into_iter().zip(&self.anticipated) {
                h.add_edge_set(set, *v);
            }
            broker.set_pricing(algo.run(&h).pricing);
        }
        // Attached only after the initial install so the seed pricing is
        // never logged (recovery rebuilds it deterministically instead).
        let broker = match self.store {
            Some(store) => broker.with_store(store),
            None => broker,
        };
        Ok(broker)
    }
}

/// A data-market broker for a single dataset.
///
/// All operations take `&self`; the broker is `Sync` and safe to share
/// across threads (e.g. behind an `Arc`), with pricing swaps serialized
/// against in-flight quotes by an internal reader–writer lock.
pub struct Broker {
    db: Database,
    support: SupportSet,
    pricing: RwLock<Pricing>,
    /// Monotone count of observable pricing changes; bumped under the
    /// `pricing` write lock (see the module docs for the invalidation
    /// contract this gives layered caches).
    epoch: AtomicU64,
    ledger: Mutex<RevenueLedger>,
    /// Arena-backed batch scratch reused across [`Broker::quote_batch`]
    /// calls (sets, claim slots, and — via [`Broker::recycle_quotes`] —
    /// spilled conflict-set buffers). Guarded by its own mutex so
    /// concurrent batches stay correct; a contended call falls back to a
    /// throwaway scratch rather than serializing (see `quote_batch_into`).
    /// Never held across the `pricing` lock boundary in a way that breaks
    /// the leaf-lock rule: `pricing` is acquired *after* (inside) the
    /// scratch lock and released first, and no scratch-holding path takes
    /// any further lock.
    scratch: Mutex<QuoteScratch>,
    /// Durability hook: when present, settles and observable repricings
    /// append WAL records before returning. Settle appends happen under
    /// the `ledger` lock so the WAL's record order always equals the
    /// ledger's insertion order (float totals re-sum bit-identically on
    /// replay); repricing appends happen under the `pricing` write lock so
    /// the WAL's patch order equals the epoch order.
    store: Option<SharedStore>,
    /// Pre-registered observability handles (inert on a disabled sink).
    telemetry: BrokerTelemetry,
}

/// The broker's pre-registered telemetry handles: span sites resolved once
/// at construction so the quote hot path never touches a registration
/// lock, plus outcome counters. With a `Disabled` sink every field is an
/// inert `None`-backed handle — entering a span or bumping a counter is a
/// branch, with no clock read and no atomic.
#[derive(Debug, Clone, Default)]
struct BrokerTelemetry {
    sink: TelemetrySink,
    /// `broker.conflict` — conflict-set computation inside a quote.
    conflict: SpanHandle,
    /// `broker.price` — pricing-function read inside a quote.
    price: SpanHandle,
    /// `broker.batch` — a whole `quote_batch_into` call.
    batch: SpanHandle,
    /// `reprice.apply` — installing a pricing swap or patch.
    reprice: SpanHandle,
    /// `settle.ledger` — settling a quote into the revenue ledger.
    settle: SpanHandle,
    /// `broker.quote` / `broker.sale` / `broker.decline` totals.
    quotes: Counter,
    sales: Counter,
    declines: Counter,
}

impl BrokerTelemetry {
    fn new(sink: TelemetrySink) -> BrokerTelemetry {
        BrokerTelemetry {
            conflict: sink.span_handle("broker.conflict"),
            price: sink.span_handle("broker.price"),
            batch: sink.span_handle("broker.batch"),
            reprice: sink.span_handle("reprice.apply"),
            settle: sink.span_handle("settle.ledger"),
            quotes: sink.counter("broker.quote"),
            sales: sink.counter("broker.sale"),
            declines: sink.counter("broker.decline"),
            sink,
        }
    }
}

impl Broker {
    /// Starts a [`BrokerBuilder`] over `db`.
    pub fn builder(db: Database) -> BrokerBuilder {
        BrokerBuilder::new(db)
    }

    /// Creates a broker over `db`, sampling a fresh support set.
    pub fn new(db: Database, support_config: &SupportConfig) -> Broker {
        let support = SupportSet::generate(&db, support_config);
        Broker::with_support(db, support)
    }

    /// Creates a broker with a pre-generated support set.
    pub fn with_support(db: Database, support: SupportSet) -> Broker {
        let n = support.len();
        Broker {
            db,
            support,
            pricing: RwLock::new(Pricing::zero_items(n)),
            epoch: AtomicU64::new(0),
            ledger: Mutex::new(RevenueLedger::default()),
            scratch: Mutex::new(QuoteScratch::new()),
            store: None,
            telemetry: BrokerTelemetry::default(),
        }
    }

    /// Attaches a durability store to an already-constructed broker. From
    /// here on every settle and every observable repricing appends a WAL
    /// record before returning; see [`BrokerBuilder::store`] for why the
    /// initial pricing install is expected to happen *before* this.
    pub fn with_store(mut self, store: SharedStore) -> Broker {
        self.store = Some(store);
        self
    }

    /// Appends a WAL record, honoring the append-before-ack contract: a
    /// failed append aborts the operation (panics) rather than acking
    /// state the log does not hold.
    fn log(&self, record: &WalRecord) {
        if let Some(store) = &self.store {
            if let Err(e) = store.append(record) {
                panic!("WAL append failed, refusing to ack an unlogged settle: {e}");
            }
        }
    }

    /// Logs and records a declined quote under one ledger-lock hold.
    fn log_decline(&self, price: f64, tick: u64) {
        let mut ledger = self.ledger.lock();
        self.log(&WalRecord::Decline {
            quote_id: 0,
            shard: 0,
            price,
            tick,
            evicted: false,
        });
        ledger.record_decline(price);
    }

    /// Attaches a telemetry sink to an already-constructed broker,
    /// pre-registering its span sites and counters. See
    /// [`BrokerBuilder::telemetry`].
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Broker {
        self.telemetry = BrokerTelemetry::new(sink);
        self
    }

    /// The telemetry sink this broker records into (`Disabled` unless one
    /// was attached). Layered components (shards, simulators) share it so
    /// one registry aggregates the whole stack.
    pub fn telemetry_sink(&self) -> &TelemetrySink {
        &self.telemetry.sink
    }

    /// The seller's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The support set backing the prices.
    pub fn support(&self) -> &SupportSet {
        &self.support
    }

    /// Installs the pricing function to quote against (usually the output of
    /// a registry algorithm).
    ///
    /// Takes `&self`: a broker shared across threads can be re-priced while
    /// other threads quote. In-flight quotes that already read the old
    /// pricing complete against it; quotes that start after the swap see the
    /// new one.
    pub fn set_pricing(&self, pricing: Pricing) {
        let _span = self.telemetry.reprice.enter();
        let mut installed = self.pricing.write();
        self.log(&WalRecord::Reprice {
            patch: PricingPatch::Replace(pricing.clone()),
        });
        *installed = pricing;
        // Bumped while the write lock is held: no reader can observe the
        // new pricing with the old epoch (or vice versa).
        // ordering: Release — pairs with the Acquire loads in
        // pricing_epoch()/versioned_price(), publishing the new pricing to
        // epoch observers.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Patches the installed pricing **in place** under the same write lock
    /// as [`Broker::set_pricing`] — the incremental-repricing hot path.
    ///
    /// Where a full repricing constructs a fresh [`Pricing`] and swaps it,
    /// an incremental repricer (see [`qp_pricing::algorithms::Repricer`])
    /// usually changes one float (UBP's uniform price, UIP's uniform
    /// weight); this applies that change directly to the installed value,
    /// reusing its allocation where shapes line up. The lock discipline is
    /// identical to `set_pricing`: in-flight quotes that already hold the
    /// read lock finish against the old pricing, quotes that start after
    /// the patch see the new one, and workers keep quoting throughout —
    /// `PricingPatch::Keep` never takes the write lock at all.
    pub fn apply_delta(&self, patch: &PricingPatch) {
        if matches!(patch, PricingPatch::Keep) {
            return; // nothing changes, so the epoch must not move either
        }
        let _span = self.telemetry.reprice.enter();
        let mut installed = self.pricing.write();
        self.log(&WalRecord::Reprice {
            patch: patch.clone(),
        });
        patch.apply(&mut installed);
        // ordering: Release — same pairing as set_pricing's bump.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The installed pricing and its epoch as one atomically consistent
    /// pair — the snapshot a durability layer persists.
    pub fn pricing_snapshot(&self) -> (Pricing, u64) {
        let pricing = self.pricing.read();
        // ordering: Acquire — pairs with the Release bumps; consistency of
        // the (pricing, epoch) pair comes from holding the read lock.
        let epoch = self.epoch.load(Ordering::Acquire);
        ((*pricing).clone(), epoch)
    }

    /// Installs recovered pricing state with an **absolute** epoch, for
    /// crash recovery only: unlike [`Broker::set_pricing`] this does not
    /// bump the epoch (recovery reproduces the pre-crash counter exactly,
    /// so epoch-validated caches re-validate against the same values) and
    /// does not append to the WAL (the state being installed came *from*
    /// the log; logging it again would double it on the next recovery).
    pub fn restore_pricing(&self, pricing: Pricing, epoch: u64) {
        let mut installed = self.pricing.write();
        *installed = pricing;
        // ordering: Release — published under the write lock like every
        // other epoch move, pairing with the Acquire loads in
        // pricing_epoch()/versioned_price().
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Replaces the revenue ledger with recovered contents (crash
    /// recovery only; see [`RevenueLedger::from_parts`]).
    pub fn restore_ledger(&self, ledger: RevenueLedger) {
        *self.ledger.lock() = ledger;
    }

    /// The current pricing epoch: a monotone counter of observable pricing
    /// changes (`set_pricing`, and every `apply_delta` except
    /// `PricingPatch::Keep`). See the module docs for the invalidation
    /// contract; cache fills must pair prices with epochs through
    /// [`Broker::versioned_price`], not through two separate reads.
    pub fn pricing_epoch(&self) -> u64 {
        // ordering: Acquire — pairs with the Release bumps under the write
        // lock; an observed epoch implies the matching pricing is visible.
        self.epoch.load(Ordering::Acquire)
    }

    /// Prices a bundle and returns the epoch the price belongs to, as one
    /// atomically consistent pair.
    ///
    /// The epoch is read while the pricing read lock is held; since writers
    /// bump the epoch while holding the write lock, the returned pair can
    /// never combine epoch `e` with a price from epoch `e' ≠ e` — the
    /// property a quote cache needs to tag entries safely.
    pub fn versioned_price(&self, bundle: &ItemSet) -> (f64, u64) {
        let pricing = self.pricing.read();
        // ordering: Acquire — pairs with the Release bumps; consistency of
        // the (price, epoch) pair comes from holding the read lock, since
        // writers only move the epoch inside the write-lock section.
        let epoch = self.epoch.load(Ordering::Acquire);
        (pricing.price_set(bundle), epoch)
    }

    /// Read access to the currently installed pricing function.
    ///
    /// The returned guard blocks [`Broker::set_pricing`] until dropped; hold
    /// it only briefly.
    pub fn pricing(&self) -> RwLockReadGuard<'_, Pricing> {
        self.pricing.read()
    }

    /// Computes the conflict set of `query` against the support.
    pub fn conflict_set(&self, query: &Query) -> ItemSet {
        DeltaConflictEngine::new(&self.db, &self.support).conflict_set(query)
    }

    /// Quotes a price for `query` without selling it.
    pub fn quote(&self, query: &Query) -> QuotedQuery {
        self.telemetry.quotes.inc();
        let conflict_set = {
            let _span = self.telemetry.conflict.enter();
            self.conflict_set(query)
        };
        let price = {
            let _span = self.telemetry.price.enter();
            self.pricing.read().price_set(&conflict_set)
        };
        QuotedQuery {
            conflict_set,
            price,
        }
    }

    /// Quotes a batch of queries, fanning conflict-set computation across
    /// the [`ParallelConflictEngine`]'s workers and reading the pricing
    /// function once.
    ///
    /// Equivalent to calling [`Broker::quote`] per query (and the test suite
    /// holds it to that), but parallelizes the per-query conflict sets; the
    /// batch is priced against a single consistent pricing snapshot even if
    /// another thread swaps the pricing mid-batch. Conflict sets — the
    /// dominant cost — are computed *before* the pricing lock is taken, so a
    /// long batch never stalls [`Broker::set_pricing`] (or quoters queued
    /// behind a writer).
    pub fn quote_batch(&self, queries: &[Query]) -> Vec<QuotedQuery> {
        let mut quotes = Vec::with_capacity(queries.len());
        self.quote_batch_into(queries, &mut quotes);
        quotes
    }

    /// [`Broker::quote_batch`] writing into a caller-owned quote buffer
    /// (cleared first), reusing the broker's arena-backed scratch so
    /// steady-state batch quoting performs no per-set heap allocation.
    ///
    /// The scratch (conflict sets, claim slots, recycled block buffers) is
    /// shared across batches under its own mutex; a batch arriving while
    /// another holds it quotes through a throwaway scratch instead of
    /// waiting — correctness never depends on reuse. Pair with
    /// [`Broker::recycle_quotes`] to return the conflict-set buffers once
    /// the quotes are dead.
    pub fn quote_batch_into(&self, queries: &[Query], out: &mut Vec<QuotedQuery>) {
        let _span = self.telemetry.batch.enter();
        self.telemetry.quotes.add(queries.len() as u64);
        out.clear();
        let engine = ParallelConflictEngine::new(&self.db, &self.support);
        let mut local;
        let mut shared = self.scratch.try_lock();
        let scratch = match shared.as_deref_mut() {
            Some(scratch) => scratch,
            None => {
                // alloc: contended fallback — another batch owns the shared
                // scratch; a fresh one keeps both batches running.
                local = QuoteScratch::new();
                &mut local
            }
        };
        // Conflict sets — the dominant cost — are computed before the
        // pricing lock is taken, so a long batch never stalls
        // `set_pricing`. Holding the scratch mutex across the pricing read
        // is legal: `pricing` stays a leaf (acquired last, released first),
        // and no other path takes the scratch lock while holding `pricing`.
        engine.conflict_sets_scratch(queries, scratch);
        let pricing = self.pricing.read();
        out.extend(scratch.sets.drain(..).map(|conflict_set| {
            let price = pricing.price_set(&conflict_set);
            QuotedQuery {
                conflict_set,
                price,
            }
        }));
    }

    /// Returns dead quotes' conflict-set buffers to the broker's arena, so
    /// the next [`Broker::quote_batch_into`] batch can rebuild its sets
    /// without heap allocation. `quotes` is drained; dropping quotes
    /// instead is always safe — the arena just allocates anew.
    pub fn recycle_quotes(&self, quotes: &mut Vec<QuotedQuery>) {
        let mut scratch = self.scratch.lock();
        for quote in quotes.drain(..) {
            scratch.arena.recycle(quote.conflict_set);
        }
    }

    /// Attempts to sell `query` to a buyer with the given `budget`.
    ///
    /// On success the query is evaluated on the real database and the answer
    /// returned; the sale is recorded in the revenue ledger with tick 0.
    /// Declined quotes are recorded too (count + forgone price), so the
    /// ledger's [`RevenueLedger::conversion_rate`] reflects every attempt.
    pub fn purchase(&self, query: &Query, budget: f64) -> Result<PurchaseOutcome, QdbError> {
        self.purchase_at(query, budget, 0)
    }

    /// [`Broker::purchase`] with an explicit simulation tick stamped on the
    /// resulting ledger entry. Simulators use this so revenue-over-time can
    /// be reconstructed from the ledger; direct API purchases use tick 0.
    pub fn purchase_at(
        &self,
        query: &Query,
        budget: f64,
        tick: u64,
    ) -> Result<PurchaseOutcome, QdbError> {
        let quote = self.quote(query);
        self.settle(&quote, query, budget, tick)
    }

    /// Settles an already-quoted query: sells at the quoted price if the
    /// budget covers it (recording the sale at `tick`), otherwise records
    /// the decline. The quote is honored as issued — callers that quoted
    /// before a [`Broker::set_pricing`] swap settle at the old price, which
    /// is exactly the guarantee a marketplace quote carries.
    ///
    /// A covered quote whose query then fails to evaluate is recorded as a
    /// decline (the buyer paid nothing and walked away empty-handed) before
    /// the error propagates, so every settlement attempt — sold, declined,
    /// or failed — leaves exactly one ledger mark and
    /// [`RevenueLedger::conversion_rate`] stays faithful to the traffic.
    pub fn settle(
        &self,
        quote: &QuotedQuery,
        query: &Query,
        budget: f64,
        tick: u64,
    ) -> Result<PurchaseOutcome, QdbError> {
        let _span = self.telemetry.settle.enter();
        if quote.price <= budget + 1e-9 {
            match query.evaluate(&self.db) {
                Ok(answer) => {
                    {
                        // WAL append and ledger mark under one lock hold:
                        // log order must equal ledger order (see `store`).
                        let mut ledger = self.ledger.lock();
                        self.log(&WalRecord::Sale {
                            quote_id: 0,
                            shard: 0,
                            bundle_len: quote.conflict_set.len() as u32,
                            price: quote.price,
                            tick,
                        });
                        ledger.record_at(quote.conflict_set.len(), quote.price, tick);
                    }
                    self.telemetry.sales.inc();
                    Ok(PurchaseOutcome::Sold {
                        price: quote.price,
                        answer,
                    })
                }
                Err(e) => {
                    self.telemetry.declines.inc();
                    self.log_decline(quote.price, tick);
                    Err(e)
                }
            }
        } else {
            self.telemetry.declines.inc();
            self.log_decline(quote.price, tick);
            Ok(PurchaseOutcome::Declined { price: quote.price })
        }
    }

    /// Total revenue realized so far through [`Broker::purchase`].
    pub fn realized_revenue(&self) -> f64 {
        self.ledger.lock().total()
    }

    /// A snapshot of the per-sale revenue ledger.
    pub fn ledger(&self) -> RevenueLedger {
        self.ledger.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_qdb::{AggFunc, ColumnType, Expr, Relation, Schema, Value};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    fn db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("gender", ColumnType::Str),
            ("age", ColumnType::Int),
        ]));
        let names = ["Abe", "Alice", "Bob", "Cathy", "Dan", "Eve"];
        for (i, n) in names.iter().enumerate() {
            rel.push(vec![
                (*n).into(),
                if i % 2 == 0 { "m".into() } else { "f".into() },
                Value::Int(18 + i as i64 * 3),
            ])
            .unwrap();
        }
        let mut d = Database::new();
        d.add_table("User", rel);
        d
    }

    fn buyer_queries() -> Vec<Query> {
        vec![
            Query::scan("User")
                .filter(Expr::col("gender").eq(Expr::lit("f")))
                .aggregate(vec![], vec![(AggFunc::Count, None, "c")]),
            Query::scan("User").project_cols(&["name"]),
            Query::scan("User").aggregate(vec![], vec![(AggFunc::Avg, Some("age"), "a")]),
        ]
    }

    fn priced_broker() -> Broker {
        Broker::builder(db())
            .support_config(SupportConfig::with_size(80))
            .algorithm("LPIP")
            .anticipate_all(buyer_queries().into_iter().map(|q| (q, 10.0)))
            .build()
            .expect("LPIP is registered")
    }

    #[test]
    fn builder_selects_algorithms_from_the_registry() {
        let broker = priced_broker();
        // The anticipated queries are priced: at least one quote is positive.
        let quotes = broker.quote_batch(&buyer_queries());
        assert!(quotes.iter().any(|q| q.price > 0.0));

        let Err(err) = Broker::builder(db()).algorithm("nope").build() else {
            panic!("unknown algorithm must fail the build");
        };
        assert_eq!(err, BrokerBuildError::UnknownAlgorithm("nope".into()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn quote_is_consistent_with_installed_pricing() {
        let broker = priced_broker();
        for q in buyer_queries() {
            let quote = broker.quote(&q);
            assert!(quote.price >= 0.0);
            assert_eq!(quote.price, broker.pricing().price_set(&quote.conflict_set));
        }
    }

    #[test]
    fn quote_batch_matches_per_query_quotes() {
        let broker = priced_broker();
        let queries = buyer_queries();
        let batch = broker.quote_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            let single = broker.quote(q);
            assert_eq!(single.conflict_set, b.conflict_set);
            assert_eq!(single.price, b.price);
        }
    }

    #[test]
    fn quote_batch_into_reuses_buffers_and_recycling_changes_nothing() {
        let broker = priced_broker();
        let queries = buyer_queries();
        let reference = broker.quote_batch(&queries);
        let mut quotes = Vec::new();
        // Several rounds through the same buffers, recycling between them:
        // prices and conflict sets must match the fresh-allocation path
        // every time.
        for round in 0..3 {
            broker.quote_batch_into(&queries, &mut quotes);
            assert_eq!(quotes.len(), reference.len(), "round {round}");
            for (a, b) in quotes.iter().zip(&reference) {
                assert_eq!(a.conflict_set, b.conflict_set);
                assert_eq!(a.price, b.price);
            }
            broker.recycle_quotes(&mut quotes);
            assert!(quotes.is_empty(), "recycling drains the batch");
        }
    }

    #[test]
    fn purchase_respects_budget_and_records_sales() {
        let broker = priced_broker();
        let q = &buyer_queries()[0];
        let quote = broker.quote(q);

        match broker.purchase(q, quote.price + 1.0).unwrap() {
            PurchaseOutcome::Sold { price, answer } => {
                assert!((price - quote.price).abs() < 1e-9);
                assert_eq!(answer.rows()[0][0], Value::Int(3));
            }
            PurchaseOutcome::Declined { .. } => panic!("budget covers the quote"),
        }
        assert!((broker.realized_revenue() - quote.price).abs() < 1e-9);
        let ledger = broker.ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.sales()[0].conflict_set_len, quote.conflict_set.len());
        assert!((ledger.sales()[0].price - quote.price).abs() < 1e-9);

        // A zero budget cannot buy a positively priced query; the decline
        // adds no sale but is counted (with its forgone price) so the
        // conversion rate reflects it.
        if quote.price > 0.0 {
            match broker.purchase(q, 0.0).unwrap() {
                PurchaseOutcome::Declined { price } => assert!(price > 0.0),
                PurchaseOutcome::Sold { .. } => panic!("should have been declined"),
            }
            let ledger = broker.ledger();
            assert_eq!(ledger.len(), 1);
            assert_eq!(ledger.declined_count(), 1);
            assert!((ledger.declined_total() - quote.price).abs() < 1e-9);
            assert_eq!(ledger.conversion_rate(), Some(0.5));
        }
    }

    #[test]
    fn purchases_stamp_ticks_and_direct_purchases_use_tick_zero() {
        let broker = priced_broker();
        let q = &buyer_queries()[1];
        let quote = broker.quote(q);
        broker.purchase(q, quote.price + 1.0).unwrap();
        broker.purchase_at(q, quote.price + 1.0, 17).unwrap();
        let ledger = broker.ledger();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.sales()[0].tick, 0);
        assert_eq!(ledger.sales()[1].tick, 17);
        // The budget never covers a price above the quote by less than the
        // shortfall below: a hard decline stays a decline at any tick.
        match broker.purchase_at(q, quote.price - 1.0, 18).unwrap() {
            PurchaseOutcome::Declined { price } => assert!((price - quote.price).abs() < 1e-9),
            PurchaseOutcome::Sold { .. } => panic!("budget is below the quote"),
        }
        assert_eq!(broker.ledger().len(), 2);
        assert_eq!(broker.ledger().declined_count(), 1);
    }

    #[test]
    fn failed_evaluations_leave_a_decline_mark_not_a_sale() {
        // A query over a missing table quotes at 0 (empty conflict set), so
        // the budget covers it — but evaluation fails. The attempt must
        // still leave exactly one ledger mark, as a decline.
        let broker = priced_broker();
        let bad = Query::scan("NoSuchTable");
        assert!(broker.purchase(&bad, 10.0).is_err());
        let ledger = broker.ledger();
        assert_eq!(ledger.len(), 0);
        assert_eq!(ledger.declined_count(), 1);
        assert_eq!(ledger.conversion_rate(), Some(0.0));
    }

    #[test]
    fn settle_honors_the_quoted_price_across_a_repricing() {
        // Quote, swap the pricing, then settle: the buyer pays the quoted
        // price, not the new one.
        let broker = priced_broker();
        let q = &buyer_queries()[1];
        let quote = broker.quote(q);
        let n = broker.support().len();
        broker.set_pricing(Pricing::Item {
            weights: vec![1000.0; n],
        });
        match broker.settle(&quote, q, quote.price + 1.0, 3).unwrap() {
            PurchaseOutcome::Sold { price, .. } => assert!((price - quote.price).abs() < 1e-9),
            PurchaseOutcome::Declined { .. } => panic!("the old quote must be honored"),
        }
        let ledger = broker.ledger();
        assert_eq!(ledger.sales()[0].tick, 3);
        assert!((ledger.total() - quote.price).abs() < 1e-9);
    }

    #[test]
    fn repricing_a_shared_broker_while_another_thread_quotes() {
        let broker = priced_broker();
        let q = buyer_queries().remove(1);
        let n = broker.support().len();

        // Two pricings the writer alternates between; every quote must see
        // exactly one of them, never a mix or a poisoned lock.
        let low = Pricing::Item {
            weights: vec![1.0; n],
        };
        let high = Pricing::Item {
            weights: vec![2.0; n],
        };
        broker.set_pricing(low.clone());
        let edge = broker.conflict_set(&q).len() as f64;
        let stop = AtomicBool::new(false);
        let quotes_done = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                let mut seen_low = 0usize;
                let mut seen_high = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let price = broker.quote(&q).price;
                    if (price - edge).abs() < 1e-9 {
                        seen_low += 1;
                    } else if (price - 2.0 * edge).abs() < 1e-9 {
                        seen_high += 1;
                    } else {
                        panic!("quote {price} matches neither installed pricing");
                    }
                    quotes_done.fetch_add(1, Ordering::Relaxed);
                }
                (seen_low, seen_high)
            });

            // Keep swapping until the reader has quoted against the broker a
            // few times (at least one swap happens concurrently with a quote;
            // the writer must not outrun thread-spawn latency and stop before
            // the reader's first quote).
            let mut i = 0usize;
            while (quotes_done.load(Ordering::Relaxed) < 3 || i < 200) && !reader.is_finished() {
                // set_pricing through &self — this is the interior-mutability
                // swap under read traffic that the engine API promises.
                broker.set_pricing(if i.is_multiple_of(2) {
                    high.clone()
                } else {
                    low.clone()
                });
                i += 1;
            }
            stop.store(true, Ordering::Relaxed);
            let (seen_low, seen_high) = reader.join().expect("reader must not panic");
            assert!(seen_low + seen_high > 0, "reader never completed a quote");
        });

        // The writer's last swap installed one of the two pricings; the final
        // quote must match it exactly.
        let final_price = broker.quote(&q).price;
        assert!(
            (final_price - edge).abs() < 1e-9 || (final_price - 2.0 * edge).abs() < 1e-9,
            "final quote {final_price} matches neither installed pricing"
        );
    }

    #[test]
    fn apply_delta_patches_the_live_pricing_in_place() {
        let broker = priced_broker();
        let q = &buyer_queries()[1];
        let n = broker.support().len();
        broker.set_pricing(Pricing::UniformBundle { price: 4.0 });
        assert_eq!(broker.quote(q).price, 4.0);

        // The UBP one-float patch lands under the write lock.
        broker.apply_delta(&PricingPatch::SetUniformPrice(9.0));
        assert_eq!(broker.quote(q).price, 9.0);

        // Keep is a no-op (and never takes the lock).
        broker.apply_delta(&PricingPatch::Keep);
        assert_eq!(broker.quote(q).price, 9.0);

        // A shape-changing patch replaces the pricing wholesale.
        broker.apply_delta(&PricingPatch::SetUniformWeight {
            weight: 2.0,
            num_items: n,
        });
        let edge = broker.conflict_set(q).len() as f64;
        assert!((broker.quote(q).price - 2.0 * edge).abs() < 1e-9);

        broker.apply_delta(&PricingPatch::Replace(Pricing::zero_items(n)));
        assert_eq!(broker.quote(q).price, 0.0);
    }

    #[test]
    fn pricing_epoch_counts_observable_changes_only() {
        let broker = priced_broker();
        let e0 = broker.pricing_epoch();
        broker.set_pricing(Pricing::UniformBundle { price: 4.0 });
        assert_eq!(broker.pricing_epoch(), e0 + 1);
        // Keep is a no-op: no change, no bump.
        broker.apply_delta(&PricingPatch::Keep);
        assert_eq!(broker.pricing_epoch(), e0 + 1);
        broker.apply_delta(&PricingPatch::SetUniformPrice(9.0));
        assert_eq!(broker.pricing_epoch(), e0 + 2);
        broker.apply_delta(&PricingPatch::Replace(Pricing::zero_items(3)));
        assert_eq!(broker.pricing_epoch(), e0 + 3);
    }

    #[test]
    fn versioned_price_pairs_are_atomically_consistent() {
        // A repricer thread walks the uniform price in lockstep with the
        // epoch; every (price, epoch) pair a reader sees must line up
        // exactly. Two separate reads would fail this under load.
        let broker = priced_broker();
        broker.set_pricing(Pricing::UniformBundle { price: 1000.0 });
        let e0 = broker.pricing_epoch();
        let bundle: ItemSet = [0usize, 2].into_iter().collect();
        let stop = AtomicBool::new(false);
        let sampled = AtomicU64::new(0);

        // Keep repricing until the reader has raced us at least a few
        // times — a fixed patch count can complete before the reader
        // thread is even scheduled on a loaded single-core box.
        let mut repricings = 0u64;
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                let mut checked = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (price, epoch) = broker.versioned_price(&bundle);
                    let step = epoch - e0;
                    assert_eq!(
                        price,
                        1000.0 + step as f64,
                        "price from epoch {epoch} served under the wrong tag"
                    );
                    checked += 1;
                    // ordering: Relaxed — progress counter, no data published.
                    sampled.fetch_add(1, Ordering::Relaxed);
                }
                checked
            });
            while repricings < 400 || sampled.load(Ordering::Relaxed) < 10 {
                repricings += 1;
                broker.apply_delta(&PricingPatch::SetUniformPrice(1000.0 + repricings as f64));
            }
            stop.store(true, Ordering::Relaxed);
            assert!(reader.join().unwrap() > 0, "reader never sampled");
        });
        assert_eq!(broker.pricing_epoch(), e0 + repricings);
    }

    #[test]
    fn more_informative_queries_never_cost_less() {
        // Information arbitrage at the broker level: the full scan determines
        // every other query, so it must be at least as expensive.
        let broker = priced_broker();
        let full = broker.quote(&Query::scan("User"));
        for q in buyer_queries() {
            let quote = broker.quote(&q);
            assert!(quote.price <= full.price + 1e-9);
        }
    }

    #[test]
    fn default_pricing_is_free() {
        let broker = Broker::new(db(), &SupportConfig::with_size(30));
        let quote = broker.quote(&Query::scan("User"));
        assert_eq!(quote.price, 0.0);
    }

    #[test]
    fn ledger_totals_accumulate_over_sales_and_declines() {
        let mut ledger = RevenueLedger::default();
        assert!(ledger.is_empty());
        assert_eq!(ledger.conversion_rate(), None);
        ledger.record(3, 2.5);
        ledger.record_at(1, 4.0, 9);
        ledger.record_decline(7.5);
        ledger.record_decline(0.5);
        assert_eq!(ledger.len(), 2);
        assert!((ledger.total() - 6.5).abs() < 1e-12);
        assert_eq!(
            ledger.sales()[1],
            Sale {
                conflict_set_len: 1,
                price: 4.0,
                tick: 9
            }
        );
        assert_eq!(ledger.sales()[0].tick, 0);
        assert_eq!(ledger.declined_count(), 2);
        assert!((ledger.declined_total() - 8.0).abs() < 1e-12);
        assert_eq!(ledger.conversion_rate(), Some(0.5));
    }

    #[test]
    fn telemetry_observes_without_changing_quotes() {
        use qp_telemetry::TelemetrySink;

        let plain = priced_broker();
        let sink = TelemetrySink::enabled();
        let instrumented = Broker::builder(db())
            .support_config(SupportConfig::with_size(80))
            .algorithm("LPIP")
            .anticipate_all(buyer_queries().into_iter().map(|q| (q, 10.0)))
            .telemetry(sink.clone())
            .build()
            .expect("LPIP is registered");

        // Out-of-band: identical quotes bit for bit, telemetry on or off.
        let queries = buyer_queries();
        for q in &queries {
            let a = plain.quote(q);
            let b = instrumented.quote(q);
            assert_eq!(a.conflict_set, b.conflict_set);
            assert_eq!(a.price.to_bits(), b.price.to_bits());
        }
        let q = &queries[0];
        let quote = instrumented.quote(q);
        instrumented.purchase(q, quote.price + 1.0).unwrap();
        instrumented.purchase(q, -1.0).unwrap();
        instrumented.set_pricing(Pricing::zero_items(instrumented.support().len()));

        let snap = sink.snapshot();
        // quote() ran len + 2 more times on the instrumented broker, and
        // purchase() quotes internally.
        assert_eq!(snap.counter("broker.quote"), Some(queries.len() as u64 + 3));
        assert_eq!(snap.counter("broker.sale"), Some(1));
        assert_eq!(snap.counter("broker.decline"), Some(1));
        for name in [
            "broker.conflict",
            "broker.price",
            "reprice.apply",
            "settle.ledger",
        ] {
            let count = snap.histogram(name).map(|h| h.count()).unwrap_or(0);
            assert!(count > 0, "no observations for {name}");
        }

        // The disabled default hands out a disabled sink.
        assert!(!plain.telemetry_sink().is_enabled());
        assert!(instrumented.telemetry_sink().is_enabled());
    }
}
