//! The broker: an end-to-end query-pricing API.
//!
//! A [`Broker`] owns the seller's database, a sampled support set, and a
//! pricing function, and exposes the operations a data marketplace needs:
//! quote a price for an incoming query, execute a purchase (returning the
//! answer when the buyer can afford it), and track realized revenue. The
//! pricing function is typically produced by one of the algorithms in
//! `qp-pricing` from a hypergraph of anticipated buyer queries.

use parking_lot::Mutex;

use qp_pricing::{BundlePricing, Pricing};
use qp_qdb::{Database, QdbError, Query, Relation};

use crate::conflict::{ConflictEngine, DeltaConflictEngine};
use crate::support::{SupportConfig, SupportSet};

/// A priced query quote.
#[derive(Debug, Clone)]
pub struct QuotedQuery {
    /// The conflict set of the query (the bundle being priced).
    pub conflict_set: Vec<usize>,
    /// The quoted price.
    pub price: f64,
}

/// The result of a purchase attempt.
#[derive(Debug, Clone)]
pub enum PurchaseOutcome {
    /// The buyer's budget covered the price; the answer is released.
    Sold {
        /// The price charged.
        price: f64,
        /// The query answer.
        answer: Relation,
    },
    /// The quoted price exceeded the buyer's budget; nothing is released.
    Declined {
        /// The price that was quoted.
        price: f64,
    },
}

/// A data-market broker for a single dataset.
pub struct Broker {
    db: Database,
    support: SupportSet,
    pricing: Pricing,
    /// Total revenue realized through [`Broker::purchase`].
    realized: Mutex<f64>,
}

impl Broker {
    /// Creates a broker over `db`, sampling a fresh support set.
    pub fn new(db: Database, support_config: &SupportConfig) -> Broker {
        let support = SupportSet::generate(&db, support_config);
        let n = support.len();
        Broker {
            db,
            support,
            pricing: Pricing::zero_items(n),
            realized: Mutex::new(0.0),
        }
    }

    /// Creates a broker with a pre-generated support set.
    pub fn with_support(db: Database, support: SupportSet) -> Broker {
        let n = support.len();
        Broker { db, support, pricing: Pricing::zero_items(n), realized: Mutex::new(0.0) }
    }

    /// The seller's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The support set backing the prices.
    pub fn support(&self) -> &SupportSet {
        &self.support
    }

    /// Installs the pricing function to quote against (usually the output of
    /// a `qp-pricing` algorithm).
    pub fn set_pricing(&mut self, pricing: Pricing) {
        self.pricing = pricing;
    }

    /// The currently installed pricing function.
    pub fn pricing(&self) -> &Pricing {
        &self.pricing
    }

    /// Computes the conflict set of `query` against the support.
    pub fn conflict_set(&self, query: &Query) -> Vec<usize> {
        DeltaConflictEngine::new(&self.db, &self.support).conflict_set(query)
    }

    /// Quotes a price for `query` without selling it.
    pub fn quote(&self, query: &Query) -> QuotedQuery {
        let conflict_set = self.conflict_set(query);
        let price = self.pricing.price(&conflict_set);
        QuotedQuery { conflict_set, price }
    }

    /// Attempts to sell `query` to a buyer with the given `budget`.
    ///
    /// On success the query is evaluated on the real database and the answer
    /// returned; the price is added to the broker's realized revenue.
    pub fn purchase(&self, query: &Query, budget: f64) -> Result<PurchaseOutcome, QdbError> {
        let quote = self.quote(query);
        if quote.price <= budget + 1e-9 {
            let answer = query.evaluate(&self.db)?;
            *self.realized.lock() += quote.price;
            Ok(PurchaseOutcome::Sold { price: quote.price, answer })
        } else {
            Ok(PurchaseOutcome::Declined { price: quote.price })
        }
    }

    /// Total revenue realized so far through [`Broker::purchase`].
    pub fn realized_revenue(&self) -> f64 {
        *self.realized.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_pricing::{algorithms, Hypergraph};
    use qp_qdb::{AggFunc, ColumnType, Expr, Relation, Schema, Value};

    fn db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("gender", ColumnType::Str),
            ("age", ColumnType::Int),
        ]));
        let names = ["Abe", "Alice", "Bob", "Cathy", "Dan", "Eve"];
        for (i, n) in names.iter().enumerate() {
            rel.push(vec![
                (*n).into(),
                if i % 2 == 0 { "m".into() } else { "f".into() },
                Value::Int(18 + i as i64 * 3),
            ])
            .unwrap();
        }
        let mut d = Database::new();
        d.add_table("User", rel);
        d
    }

    fn buyer_queries() -> Vec<Query> {
        vec![
            Query::scan("User")
                .filter(Expr::col("gender").eq(Expr::lit("f")))
                .aggregate(vec![], vec![(AggFunc::Count, None, "c")]),
            Query::scan("User").project_cols(&["name"]),
            Query::scan("User").aggregate(vec![], vec![(AggFunc::Avg, Some("age"), "a")]),
        ]
    }

    fn priced_broker() -> Broker {
        let mut broker = Broker::new(db(), &SupportConfig::with_size(80));
        // Build a hypergraph from the anticipated queries, give them
        // valuations, run LPIP, and install the result.
        let queries = buyer_queries();
        let mut h = Hypergraph::new(broker.support().len());
        for q in &queries {
            h.add_edge(broker.conflict_set(q), 10.0);
        }
        let out = algorithms::lp_item_price(&h, &Default::default());
        broker.set_pricing(out.pricing);
        broker
    }

    #[test]
    fn quote_is_consistent_with_installed_pricing() {
        let broker = priced_broker();
        for q in buyer_queries() {
            let quote = broker.quote(&q);
            assert!(quote.price >= 0.0);
            assert_eq!(
                quote.price,
                broker.pricing().price(&quote.conflict_set)
            );
        }
    }

    #[test]
    fn purchase_respects_budget_and_accumulates_revenue() {
        let broker = priced_broker();
        let q = &buyer_queries()[0];
        let quote = broker.quote(q);

        match broker.purchase(q, quote.price + 1.0).unwrap() {
            PurchaseOutcome::Sold { price, answer } => {
                assert!((price - quote.price).abs() < 1e-9);
                assert_eq!(answer.rows()[0][0], Value::Int(3));
            }
            PurchaseOutcome::Declined { .. } => panic!("budget covers the quote"),
        }
        assert!((broker.realized_revenue() - quote.price).abs() < 1e-9);

        // A zero budget cannot buy a positively priced query.
        if quote.price > 0.0 {
            match broker.purchase(q, 0.0).unwrap() {
                PurchaseOutcome::Declined { price } => assert!(price > 0.0),
                PurchaseOutcome::Sold { .. } => panic!("should have been declined"),
            }
            assert!((broker.realized_revenue() - quote.price).abs() < 1e-9);
        }
    }

    #[test]
    fn more_informative_queries_never_cost_less() {
        // Information arbitrage at the broker level: the full scan determines
        // every other query, so it must be at least as expensive.
        let broker = priced_broker();
        let full = broker.quote(&Query::scan("User"));
        for q in buyer_queries() {
            let quote = broker.quote(&q);
            assert!(quote.price <= full.price + 1e-9);
        }
    }

    #[test]
    fn default_pricing_is_free() {
        let broker = Broker::new(db(), &SupportConfig::with_size(30));
        let quote = broker.quote(&Query::scan("User"));
        assert_eq!(quote.price, 0.0);
    }
}
