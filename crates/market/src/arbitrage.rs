//! Empirical arbitrage-freeness checks (paper §3.1, Theorem 1).
//!
//! Theorem 1 guarantees that pricing conflict sets with a monotone,
//! subadditive set function is arbitrage-free. These helpers verify the two
//! arbitrage conditions *empirically* on a concrete workload — they are used
//! by the integration tests and by the examples to demonstrate that every
//! pricing produced by the algorithms is safe to deploy.
//!
//! * **Information arbitrage**: if query `Q₂` determines `Q₁` (relative to
//!   the support, `C_S(Q₁) ⊆ C_S(Q₂)`), then `p(Q₁) ≤ p(Q₂)`.
//! * **Combination arbitrage**: for the concatenation `Q₁‖Q₂` (whose conflict
//!   set is `C_S(Q₁) ∪ C_S(Q₂)`), `p(Q₁‖Q₂) ≤ p(Q₁) + p(Q₂)`.

use qp_core::ItemSet;
use qp_pricing::BundlePricing;

/// A violation report from the arbitrage checkers.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbitrageReport {
    /// Pairs `(i, j)` of query indices violating information arbitrage:
    /// `C(i) ⊆ C(j)` but `p(i) > p(j)`.
    pub information_violations: Vec<(usize, usize)>,
    /// Pairs `(i, j)` violating combination arbitrage:
    /// `p(C(i) ∪ C(j)) > p(C(i)) + p(C(j))`.
    pub combination_violations: Vec<(usize, usize)>,
}

impl ArbitrageReport {
    /// True when no violations were found.
    pub fn is_arbitrage_free(&self) -> bool {
        self.information_violations.is_empty() && self.combination_violations.is_empty()
    }
}

/// Checks information arbitrage over every ordered pair of conflict sets.
/// Subset tests are block-wise over the bitsets.
pub fn check_information_arbitrage(
    conflict_sets: &[ItemSet],
    pricing: &dyn BundlePricing,
) -> Vec<(usize, usize)> {
    let mut violations = Vec::new();
    for (i, ci) in conflict_sets.iter().enumerate() {
        for (j, cj) in conflict_sets.iter().enumerate() {
            if i == j {
                continue;
            }
            if ci.is_subset(cj) && pricing.price_set(ci) > pricing.price_set(cj) + 1e-9 {
                violations.push((i, j));
            }
        }
    }
    violations
}

/// Checks combination arbitrage over every unordered pair of conflict sets.
pub fn check_combination_arbitrage(
    conflict_sets: &[ItemSet],
    pricing: &dyn BundlePricing,
) -> Vec<(usize, usize)> {
    let mut violations = Vec::new();
    for i in 0..conflict_sets.len() {
        for j in i..conflict_sets.len() {
            let union = conflict_sets[i].union(&conflict_sets[j]);
            let combined = pricing.price_set(&union);
            let separate =
                pricing.price_set(&conflict_sets[i]) + pricing.price_set(&conflict_sets[j]);
            if combined > separate + 1e-9 {
                violations.push((i, j));
            }
        }
    }
    violations
}

/// Runs both checks and aggregates the results.
pub fn check_all(conflict_sets: &[ItemSet], pricing: &dyn BundlePricing) -> ArbitrageReport {
    ArbitrageReport {
        information_violations: check_information_arbitrage(conflict_sets, pricing),
        combination_violations: check_combination_arbitrage(conflict_sets, pricing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_pricing::Pricing;

    struct BadPricing;
    impl BundlePricing for BadPricing {
        fn price(&self, items: &[usize]) -> f64 {
            // Deliberately non-monotone: smaller bundles cost more.
            if items.is_empty() {
                100.0
            } else {
                10.0 / items.len() as f64
            }
        }
    }

    fn sets() -> Vec<ItemSet> {
        [vec![0], vec![0, 1], vec![2], vec![0, 1, 2]]
            .into_iter()
            .map(|v| v.into_iter().collect())
            .collect()
    }

    #[test]
    fn item_pricing_passes_both_checks() {
        let p = Pricing::Item {
            weights: vec![1.0, 2.0, 4.0],
        };
        let report = check_all(&sets(), &p);
        assert!(report.is_arbitrage_free(), "{report:?}");
    }

    #[test]
    fn uniform_bundle_pricing_passes_both_checks() {
        let p = Pricing::UniformBundle { price: 3.0 };
        let report = check_all(&sets(), &p);
        assert!(report.is_arbitrage_free());
    }

    #[test]
    fn xos_pricing_passes_both_checks() {
        let p = Pricing::Xos {
            components: vec![vec![1.0, 0.0, 2.0], vec![0.5, 1.5, 0.0]],
        };
        let report = check_all(&sets(), &p);
        assert!(report.is_arbitrage_free());
    }

    #[test]
    fn non_monotone_pricing_is_caught() {
        let report = check_all(&sets(), &BadPricing);
        assert!(!report.information_violations.is_empty());
        assert!(!report.is_arbitrage_free());
    }

    #[test]
    fn superadditive_pricing_is_caught() {
        struct Superadditive;
        impl BundlePricing for Superadditive {
            fn price(&self, items: &[usize]) -> f64 {
                (items.len() * items.len()) as f64
            }
        }
        let violations = check_combination_arbitrage(&sets(), &Superadditive);
        assert!(!violations.is_empty());
    }
}
