//! Revenue upper bounds (paper §6.1).
//!
//! Two bounds are used to normalize revenue in the paper's figures:
//!
//! 1. **Sum of valuations** `Σ_e v_e` — the coarse bound every approximation
//!    guarantee in the literature is stated against. This is a true upper
//!    bound on the revenue of *any* pricing.
//! 2. **Subadditive bound** — the paper's heuristic LP bound on what a
//!    monotone subadditive bundle pricing could extract. Each bundle gets a
//!    price variable `p_e ∈ [0, v_e]`; for bundles with large valuations the
//!    LP greedily finds covers by *other* (typically low-valuation) bundles
//!    and adds the subadditivity constraint `p_e ≤ Σ_{e'∈cover} p_{e'}`. The
//!    objective `max Σ_e p_e` is then reported as the bound.
//!
//! As in the paper, the subadditive bound is a *pricing-side* relaxation: it
//! constrains prices, not realized revenues, so on adversarially constructed
//! instances it can dip below the revenue actually achievable by an
//! arbitrage-free pricing (the paper itself observes the bound "not being as
//! good as it should be" in some configurations). On the query workloads it
//! is consistently between the best algorithm and Σ valuations, which is what
//! makes it a useful normalizer.

use qp_lp::{ConstraintOp, LpProblem, Sense};

use crate::Hypergraph;

/// The coarse revenue upper bound `Σ_e v_e`.
pub fn sum_of_valuations(h: &Hypergraph) -> f64 {
    h.total_valuation()
}

/// Configuration of the subadditive-bound LP.
#[derive(Debug, Clone)]
pub struct SubadditiveBoundConfig {
    /// Maximum number of cover constraints generated per bundle.
    pub covers_per_edge: usize,
    /// Pivot budget for the LP solve.
    pub max_lp_iterations: usize,
}

impl Default for SubadditiveBoundConfig {
    fn default() -> Self {
        SubadditiveBoundConfig {
            covers_per_edge: 1,
            max_lp_iterations: 400_000,
        }
    }
}

/// Computes the paper's subadditive revenue bound.
pub fn subadditive_bound(h: &Hypergraph, config: &SubadditiveBoundConfig) -> f64 {
    let m = h.num_edges();
    if m == 0 {
        return 0.0;
    }

    let mut lp = LpProblem::new(Sense::Maximize, m);
    lp.set_max_iterations(config.max_lp_iterations);
    for e in 0..m {
        lp.set_objective(e, 1.0);
        lp.add_constraint(vec![(e, 1.0)], ConstraintOp::Le, h.edge(e).valuation);
    }

    // Cover candidates in *increasing* valuation order: the paper covers the
    // expensive bundles with cheap ones, which is what makes the bound
    // tighter than Σ v_e.
    let mut ascending: Vec<usize> = (0..m).collect();
    ascending.sort_by(|&a, &b| {
        h.edge(a)
            .valuation
            .partial_cmp(&h.edge(b).valuation)
            .unwrap()
    });
    // Constraints are generated for the most valuable bundles first.
    let descending: Vec<usize> = ascending.iter().rev().copied().collect();

    for &target in &descending {
        let te = h.edge(target);
        if te.items.is_empty() {
            // An empty bundle is covered by the empty set of bundles: any
            // monotone subadditive pricing must price it at 0.
            lp.add_constraint(vec![(target, 1.0)], ConstraintOp::Le, 0.0);
            continue;
        }
        let mut added = 0usize;
        let mut skip_before = 0usize;
        while added < config.covers_per_edge {
            if let Some(cover) = greedy_cover(h, target, &ascending, skip_before) {
                let mut coeffs = vec![(target, 1.0)];
                for &c in &cover {
                    coeffs.push((c, -1.0));
                }
                lp.add_constraint(coeffs, ConstraintOp::Le, 0.0);
                added += 1;
                skip_before += 1;
            } else {
                break;
            }
        }
    }

    match lp.solve() {
        Ok(sol) => sol.objective.min(sum_of_valuations(h)),
        Err(_) => sum_of_valuations(h),
    }
}

/// Greedily covers the items of `target` using other edges, scanning the
/// candidate edges in `order` but ignoring the first `skip` usable candidates
/// (used to generate a few *different* covers per edge). Returns `None` when
/// no full cover by other edges exists.
fn greedy_cover(h: &Hypergraph, target: usize, order: &[usize], skip: usize) -> Option<Vec<usize>> {
    let te = h.edge(target);
    let mut uncovered = te.items.clone();
    let mut cover = Vec::new();
    let mut skipped = 0usize;

    for &cand in order {
        if uncovered.is_empty() {
            break;
        }
        if cand == target {
            continue;
        }
        let ce = h.edge(cand);
        if ce.items.is_disjoint(&uncovered) {
            continue;
        }
        if skipped < skip {
            skipped += 1;
            continue;
        }
        cover.push(cand);
        uncovered.difference_with(&ce.items);
    }

    if uncovered.is_empty() && !cover.is_empty() {
        Some(cover)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_instance() -> Hypergraph {
        // A big bundle covered by two small ones with low valuations: the
        // subadditive bound caps the big bundle's price at their sum.
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0, 1], 1.0);
        h.add_edge(vec![2, 3], 1.0);
        h.add_edge(vec![0, 1, 2, 3], 100.0);
        h
    }

    #[test]
    fn bound_never_exceeds_sum_of_valuations() {
        for h in [nested_instance(), {
            let mut h = Hypergraph::new(3);
            h.add_edge(vec![0, 1], 6.0);
            h.add_edge(vec![1, 2], 4.0);
            h.add_edge(vec![0, 2], 5.0);
            h
        }] {
            let bound = subadditive_bound(&h, &SubadditiveBoundConfig::default());
            assert!(bound <= sum_of_valuations(&h) + 1e-9);
            assert!(bound > 0.0);
        }
    }

    #[test]
    fn cover_constraints_tighten_the_bound() {
        let h = nested_instance();
        let bound = subadditive_bound(&h, &SubadditiveBoundConfig::default());
        // Without cover constraints the bound would be 102; with the cover
        // {0,1},{2,3} of the big edge it is at most 1 + 1 + (1+1) = 4.
        assert!(bound <= 4.0 + 1e-6, "bound {bound} not tightened");
        assert!(bound >= 2.0 - 1e-9);
    }

    #[test]
    fn disjoint_edges_keep_full_sum() {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0], 3.0);
        h.add_edge(vec![1], 5.0);
        h.add_edge(vec![2, 3], 7.0);
        let bound = subadditive_bound(&h, &SubadditiveBoundConfig::default());
        assert!((bound - 15.0).abs() < 1e-6);
    }

    #[test]
    fn empty_bundles_are_priced_at_zero_by_the_bound() {
        let mut h = Hypergraph::new(2);
        h.add_edge(Vec::<usize>::new(), 50.0);
        h.add_edge(vec![0], 3.0);
        let bound = subadditive_bound(&h, &SubadditiveBoundConfig::default());
        assert!((bound - 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_hypergraph_bound_is_zero() {
        let h = Hypergraph::new(3);
        assert_eq!(
            subadditive_bound(&h, &SubadditiveBoundConfig::default()),
            0.0
        );
        assert_eq!(sum_of_valuations(&h), 0.0);
    }

    #[test]
    fn more_covers_never_loosen_the_bound() {
        let h = nested_instance();
        let one = subadditive_bound(
            &h,
            &SubadditiveBoundConfig {
                covers_per_edge: 1,
                max_lp_iterations: 100_000,
            },
        );
        let three = subadditive_bound(
            &h,
            &SubadditiveBoundConfig {
                covers_per_edge: 3,
                max_lp_iterations: 100_000,
            },
        );
        assert!(three <= one + 1e-6);
    }

    #[test]
    fn identical_overlapping_edges_bound_matches_sum() {
        // Two identical bundles with equal valuations: each covers the other,
        // so the constraints p_a <= p_b and p_b <= p_a are harmless and the
        // bound equals the sum.
        let mut h = Hypergraph::new(2);
        h.add_edge(vec![0, 1], 5.0);
        h.add_edge(vec![0, 1], 5.0);
        let bound = subadditive_bound(&h, &SubadditiveBoundConfig::default());
        assert!((bound - 10.0).abs() < 1e-6);
    }
}
