//! Succinct pricing-function classes.

use qp_core::ItemSet;

/// A set function assigning a price to every bundle of items.
///
/// Arbitrage-freeness requires the function to be monotone and subadditive
/// (Theorem 1 of the paper); all three succinct classes implemented here
/// satisfy both properties by construction, and the test suite additionally
/// verifies them exhaustively on small ground sets.
pub trait BundlePricing {
    /// Price of the bundle containing exactly `items` (indices may be in any
    /// order and may repeat; repeats are ignored).
    fn price(&self, items: &[usize]) -> f64;

    /// Price of a bundle given as an [`ItemSet`] — the hot path used by the
    /// broker and the revenue accounting, where bundles are already bitsets.
    ///
    /// The default goes through [`BundlePricing::price`] on the sorted-vec
    /// form; implementors with an additive structure should override it to
    /// avoid the conversion (see [`Pricing`]).
    fn price_set(&self, items: &ItemSet) -> f64 {
        self.price(&items.to_vec())
    }
}

/// A concrete succinct pricing function.
#[derive(Debug, Clone, PartialEq)]
pub enum Pricing {
    /// The same price for every bundle (including the empty bundle; this is
    /// the paper's UBP convention).
    UniformBundle {
        /// The uniform bundle price `P`.
        price: f64,
    },
    /// Additive item pricing: `p(e) = Σ_{j∈e} w_j`.
    Item {
        /// Per-item weights `w_j ≥ 0`, indexed by item.
        weights: Vec<f64>,
    },
    /// XOS / fractionally-subadditive pricing: the maximum over several
    /// additive components.
    Xos {
        /// Additive components; `p(e) = max_i Σ_{j∈e} w^i_j`.
        components: Vec<Vec<f64>>,
    },
}

impl Pricing {
    /// A zero item pricing over `n` items.
    pub fn zero_items(n: usize) -> Pricing {
        Pricing::Item {
            weights: vec![0.0; n],
        }
    }

    /// Item weights if this is an item pricing.
    pub fn item_weights(&self) -> Option<&[f64]> {
        match self {
            Pricing::Item { weights } => Some(weights),
            _ => None,
        }
    }

    /// Human-readable class name.
    pub fn class_name(&self) -> &'static str {
        match self {
            Pricing::UniformBundle { .. } => "uniform-bundle",
            Pricing::Item { .. } => "item",
            Pricing::Xos { .. } => "xos",
        }
    }

    /// Number of parameters needed to store the function (its representation
    /// size, paper §3.4).
    pub fn representation_size(&self) -> usize {
        match self {
            Pricing::UniformBundle { .. } => 1,
            Pricing::Item { weights } => weights.len(),
            Pricing::Xos { components } => components.iter().map(|c| c.len()).sum(),
        }
    }
}

fn additive_price(weights: &[f64], items: &[usize], seen: &mut [bool]) -> f64 {
    // Ignore duplicate indices so that the function is a true set function.
    let mut total = 0.0;
    for &j in items {
        if j < weights.len() && !seen[j] {
            seen[j] = true;
            total += weights[j];
        }
    }
    for &j in items {
        if j < seen.len() {
            seen[j] = false;
        }
    }
    total
}

/// Additive price of a bitset bundle: no `seen` bookkeeping is needed
/// because an [`ItemSet`] cannot contain duplicates. Folds from `+0.0`
/// explicitly — `Iterator::sum` for floats starts at `-0.0`, which would
/// price empty bundles at a cosmetically negative zero.
fn additive_set_price(weights: &[f64], items: &ItemSet) -> f64 {
    items
        .iter()
        .map(|j| weights.get(j).copied().unwrap_or(0.0))
        .fold(0.0, |acc, w| acc + w)
}

impl BundlePricing for Pricing {
    fn price(&self, items: &[usize]) -> f64 {
        match self {
            Pricing::UniformBundle { price } => *price,
            Pricing::Item { weights } => {
                let mut seen = vec![false; weights.len()];
                additive_price(weights, items, &mut seen)
            }
            Pricing::Xos { components } => {
                let n = components.iter().map(|c| c.len()).max().unwrap_or(0);
                let mut seen = vec![false; n];
                components
                    .iter()
                    .map(|w| additive_price(w, items, &mut seen))
                    .fold(0.0, f64::max)
            }
        }
    }

    fn price_set(&self, items: &ItemSet) -> f64 {
        match self {
            Pricing::UniformBundle { price } => *price,
            Pricing::Item { weights } => additive_set_price(weights, items),
            Pricing::Xos { components } => components
                .iter()
                .map(|w| additive_set_price(w, items))
                .fold(0.0, f64::max),
        }
    }
}

/// Exhaustively checks monotonicity of a pricing function over all subsets of
/// `{0, .., n-1}` (intended for tests with small `n`).
pub fn is_monotone(p: &dyn BundlePricing, n: usize) -> bool {
    assert!(n <= 16, "exhaustive check only supports small ground sets");
    let subsets = 1usize << n;
    let bundle = |mask: usize| -> Vec<usize> { (0..n).filter(|i| mask & (1 << i) != 0).collect() };
    for a in 0..subsets {
        for b in 0..subsets {
            if a & b == a {
                // a ⊆ b
                if p.price(&bundle(a)) > p.price(&bundle(b)) + 1e-9 {
                    return false;
                }
            }
        }
    }
    true
}

/// Exhaustively checks subadditivity of a pricing function over all subsets
/// of `{0, .., n-1}` (intended for tests with small `n`).
pub fn is_subadditive(p: &dyn BundlePricing, n: usize) -> bool {
    assert!(n <= 16, "exhaustive check only supports small ground sets");
    let subsets = 1usize << n;
    let bundle = |mask: usize| -> Vec<usize> { (0..n).filter(|i| mask & (1 << i) != 0).collect() };
    for a in 0..subsets {
        for b in 0..subsets {
            let union = a | b;
            if p.price(&bundle(union)) > p.price(&bundle(a)) + p.price(&bundle(b)) + 1e-9 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bundle_prices_everything_the_same() {
        let p = Pricing::UniformBundle { price: 7.0 };
        assert_eq!(p.price(&[]), 7.0);
        assert_eq!(p.price(&[0, 3]), 7.0);
        assert_eq!(p.class_name(), "uniform-bundle");
        assert_eq!(p.representation_size(), 1);
    }

    #[test]
    fn item_pricing_is_additive_and_ignores_duplicates() {
        let p = Pricing::Item {
            weights: vec![1.0, 2.0, 4.0],
        };
        assert_eq!(p.price(&[]), 0.0);
        assert_eq!(p.price(&[0, 2]), 5.0);
        assert_eq!(p.price(&[0, 0, 2, 2]), 5.0);
        // Out-of-range items price as 0 (they carry no information).
        assert_eq!(p.price(&[7]), 0.0);
        assert_eq!(p.item_weights().unwrap(), &[1.0, 2.0, 4.0]);
        assert_eq!(p.representation_size(), 3);
    }

    #[test]
    fn xos_pricing_takes_component_max() {
        let p = Pricing::Xos {
            components: vec![vec![3.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]],
        };
        assert_eq!(p.price(&[0]), 3.0);
        assert_eq!(p.price(&[1, 2]), 2.0);
        assert_eq!(p.price(&[0, 1, 2]), 3.0);
        assert_eq!(p.class_name(), "xos");
        assert_eq!(p.representation_size(), 6);
        assert_eq!(p.price(&[]), 0.0);
    }

    #[test]
    fn zero_items_prices_everything_at_zero() {
        let p = Pricing::zero_items(4);
        assert_eq!(p.price(&[0, 1, 2, 3]), 0.0);
    }

    #[test]
    fn item_and_xos_pricings_are_monotone_and_subadditive() {
        let item = Pricing::Item {
            weights: vec![0.5, 2.0, 0.0, 1.5],
        };
        assert!(is_monotone(&item, 4));
        assert!(is_subadditive(&item, 4));

        let xos = Pricing::Xos {
            components: vec![vec![2.0, 0.0, 1.0, 0.0], vec![0.0, 1.0, 1.0, 1.0]],
        };
        assert!(is_monotone(&xos, 4));
        assert!(is_subadditive(&xos, 4));
    }

    #[test]
    fn price_set_agrees_with_price_on_every_class() {
        let bundles: Vec<Vec<usize>> = vec![vec![], vec![0], vec![0, 2], vec![1, 2, 7]];
        let pricings = [
            Pricing::UniformBundle { price: 3.5 },
            Pricing::Item {
                weights: vec![1.0, 2.0, 4.0],
            },
            Pricing::Xos {
                components: vec![vec![3.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]],
            },
        ];
        for p in &pricings {
            for b in &bundles {
                let set: ItemSet = b.iter().copied().collect();
                assert_eq!(
                    p.price(b),
                    p.price_set(&set),
                    "{:?} on {b:?}",
                    p.class_name()
                );
            }
        }
        // Empty bundles price at *positive* zero under the additive classes
        // (float `sum()` folds from -0.0; `additive_set_price` must not).
        for p in &pricings[1..] {
            assert!(p.price_set(&ItemSet::new()).is_sign_positive());
        }
    }

    #[test]
    fn uniform_bundle_is_subadditive_but_not_monotone_at_empty_set() {
        // The paper's UBP convention prices the empty bundle at P as well,
        // which keeps it monotone; verify both properties hold.
        let p = Pricing::UniformBundle { price: 2.0 };
        assert!(is_monotone(&p, 3));
        assert!(is_subadditive(&p, 3));
    }
}
