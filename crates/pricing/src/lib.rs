//! # qp-pricing — revenue-maximizing pricing over bundle hypergraphs
//!
//! This crate implements the core contribution of *Revenue Maximization for
//! Query Pricing* (Chawla, Deep, Koutris, Teng — VLDB 2019): given a
//! hypergraph whose vertices are support databases and whose hyperedges are
//! the conflict sets of buyer queries (each with a valuation), compute a
//! succinct, arbitrage-free pricing function that maximizes the seller's
//! revenue in the unlimited-supply, single-minded-buyer setting.
//!
//! ## Pricing-function classes (paper §3.4)
//!
//! * **Uniform bundle pricing** — one price for every bundle.
//! * **Item (additive) pricing** — a weight per item, bundle price is the sum.
//! * **XOS pricing** — the maximum over several additive components.
//!
//! ## Algorithms (paper §5)
//!
//! Every algorithm is registered in the [`algorithms`] registry under its
//! paper name; [`algorithms::all`] returns the full roster as
//! [`algorithms::PricingAlgorithm`] trait objects and
//! [`algorithms::by_name`] resolves a single one:
//!
//! | Registry name | Guarantee | Config struct | Free function |
//! |---------------|-----------|---------------|---------------|
//! | `UBP` uniform bundle pricing | O(log m) | [`algorithms::Ubp`] | [`algorithms::uniform_bundle_price`] |
//! | `UIP` uniform item pricing (Guruswami et al.) | O(log n + log m) | [`algorithms::Uip`] | [`algorithms::uniform_item_price`] |
//! | `LPIP` LP-based item pricing | O(log m) | [`algorithms::Lpip`] | [`algorithms::lp_item_price`] |
//! | `CIP` capacity-constrained item pricing (Cheung–Swamy) | O((1+ε) log B) | [`algorithms::Cip`] | [`algorithms::capacity_item_price`] |
//! | `Layering` (Algorithm 1) | O(B) | [`algorithms::Layering`] | [`algorithms::layering`] |
//! | `XOS` max of LPIP and CIP | — | [`algorithms::Xos`] | [`algorithms::xos_pricing`] |
//!
//! Revenue upper bounds (Σ valuations and the subadditive LP bound of §6.1)
//! live in [`bounds`]; the Ω(log m) lower-bound constructions of Lemmas 2–4
//! live in [`instances`].
//!
//! ## Representation
//!
//! Hyperedges store their bundles as [`ItemSet`] bitsets (`qp-core`), and
//! aggregate item queries (degrees, max degree `B`, unique-item flags,
//! item→edge adjacency) are served by the lazily-built [`ItemIndex`],
//! which structural mutations patch **in place** — see the [`Hypergraph`]
//! docs for the maintenance rules.
//!
//! ## Incremental demand deltas
//!
//! Live markets learn demand from buyer interactions, so the hypergraph
//! mutates constantly. [`HypergraphDelta`] batches
//! `add_edge`/`remove_edge`/`revalue_edge` ops, [`Hypergraph::apply_delta`]
//! applies them in O(|delta|) and returns an [`AppliedOp`] log, and
//! algorithms with cheap update rules (UBP, UIP, XOS) expose an
//! [`algorithms::IncrementalRepricer`] through
//! [`algorithms::PricingAlgorithm::reprice_incremental`] that patches their
//! pricing in place — [`algorithms::Repricer`] drives either path
//! uniformly, and [`algorithms::PricingPatch`] carries the minimal change
//! to install.
//!
//! ## Example
//!
//! ```
//! use qp_pricing::{Hypergraph, algorithms, revenue};
//!
//! let mut h = Hypergraph::new(4);
//! h.add_edge(vec![0], 8.0);
//! h.add_edge(vec![0, 1], 12.0);
//! h.add_edge(vec![2, 3], 5.0);
//!
//! let lpip = algorithms::by_name("LPIP").expect("registered");
//! let out = lpip.run(&h);
//! assert!(out.revenue <= 25.0 + 1e-9);
//! assert!(out.revenue >= 24.9); // LPIP extracts (almost) everything here
//! let check = revenue::revenue(&h, &out.pricing);
//! assert!((check - out.revenue).abs() < 1e-6);
//!
//! // The whole roster, uniformly:
//! for algo in algorithms::all() {
//!     assert!(algo.run(&h).revenue <= 25.0 + 1e-9, "{}", algo.name());
//! }
//! ```

pub mod algorithms;
pub mod bounds;
pub mod instances;
pub mod revenue;

mod hypergraph;
mod pricing_fn;

pub use hypergraph::{
    AppliedOp, DeltaOp, Edge, Hypergraph, HypergraphDelta, HypergraphStats, ItemIndex,
};
pub use pricing_fn::{is_monotone, is_subadditive, BundlePricing, Pricing};
pub use qp_core::ItemSet;

/// The result of running a pricing algorithm on a hypergraph.
#[derive(Debug, Clone)]
pub struct PricingOutcome {
    /// Short algorithm name (e.g. `"LPIP"`).
    pub algorithm: &'static str,
    /// Revenue achieved on the input hypergraph.
    pub revenue: f64,
    /// The pricing function that achieves it.
    pub pricing: Pricing,
}

impl PricingOutcome {
    /// Revenue normalized by an upper bound (e.g. Σ valuations), as plotted in
    /// the paper's figures.
    pub fn normalized(&self, upper_bound: f64) -> f64 {
        if upper_bound <= 0.0 {
            0.0
        } else {
            self.revenue / upper_bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_revenue_handles_zero_bound() {
        let o = PricingOutcome {
            algorithm: "UBP",
            revenue: 5.0,
            pricing: Pricing::UniformBundle { price: 1.0 },
        };
        assert_eq!(o.normalized(10.0), 0.5);
        assert_eq!(o.normalized(0.0), 0.0);
    }
}
