//! The bundle hypergraph.

/// A hyperedge: a bundle of items (support-database indices) together with
/// the buyer's valuation for the corresponding query vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Sorted, de-duplicated item indices of the bundle (the conflict set).
    pub items: Vec<usize>,
    /// The buyer's valuation `v_e ≥ 0`.
    pub valuation: f64,
}

impl Edge {
    /// Bundle size `|e|`.
    pub fn size(&self) -> usize {
        self.items.len()
    }
}

/// The hypergraph `H = (V, E)` of the paper: vertices are the `n` support
/// databases, hyperedges are buyer bundles (conflict sets) with valuations.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    num_items: usize,
    edges: Vec<Edge>,
}

/// Summary statistics of a hypergraph (Table 3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct HypergraphStats {
    /// Number of items `n = |S|`.
    pub num_items: usize,
    /// Number of hyperedges (queries) `m`.
    pub num_edges: usize,
    /// Maximum item degree `B`.
    pub max_degree: usize,
    /// Average hyperedge size.
    pub avg_edge_size: f64,
    /// Number of empty hyperedges.
    pub empty_edges: usize,
    /// Number of hyperedges that contain at least one item unique to them.
    pub edges_with_unique_item: usize,
}

impl Hypergraph {
    /// Creates a hypergraph over `num_items` items with no edges.
    pub fn new(num_items: usize) -> Self {
        Hypergraph {
            num_items,
            edges: Vec::new(),
        }
    }

    /// Adds a hyperedge over `items` with valuation `valuation`; returns its
    /// index. Item indices are sorted and de-duplicated; indices beyond the
    /// current item count grow the vertex set.
    pub fn add_edge<I: IntoIterator<Item = usize>>(&mut self, items: I, valuation: f64) -> usize {
        let mut items: Vec<usize> = items.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        if let Some(&max) = items.last() {
            self.num_items = self.num_items.max(max + 1);
        }
        assert!(valuation >= 0.0, "valuations must be non-negative");
        self.edges.push(Edge { items, valuation });
        self.edges.len() - 1
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of hyperedges `m`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// A single hyperedge.
    pub fn edge(&self, idx: usize) -> &Edge {
        &self.edges[idx]
    }

    /// Replaces every valuation using `f(edge index, edge) -> new valuation`.
    pub fn set_valuations<F: FnMut(usize, &Edge) -> f64>(&mut self, mut f: F) {
        for i in 0..self.edges.len() {
            let v = f(i, &self.edges[i]);
            assert!(v >= 0.0, "valuations must be non-negative");
            self.edges[i].valuation = v;
        }
    }

    /// Sum of all valuations — the coarse revenue upper bound used throughout
    /// the paper.
    pub fn total_valuation(&self) -> f64 {
        self.edges.iter().map(|e| e.valuation).sum()
    }

    /// Per-item degrees (number of hyperedges containing each item).
    pub fn item_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_items];
        for e in &self.edges {
            for &j in &e.items {
                deg[j] += 1;
            }
        }
        deg
    }

    /// Maximum item degree `B`.
    pub fn max_degree(&self) -> usize {
        self.item_degrees().into_iter().max().unwrap_or(0)
    }

    /// Items that appear in at least one hyperedge, in increasing order.
    pub fn active_items(&self) -> Vec<usize> {
        let mut seen = vec![false; self.num_items];
        for e in &self.edges {
            for &j in &e.items {
                seen[j] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| if s { Some(i) } else { None })
            .collect()
    }

    /// For every edge, whether it contains an item that belongs to no other
    /// edge ("unique item" in the paper's layering analysis).
    pub fn edges_with_unique_item(&self) -> Vec<bool> {
        let deg = self.item_degrees();
        self.edges
            .iter()
            .map(|e| e.items.iter().any(|&j| deg[j] == 1))
            .collect()
    }

    /// Summary statistics (Table 3 / Figure 4 of the paper).
    pub fn stats(&self) -> HypergraphStats {
        let sizes: Vec<usize> = self.edges.iter().map(|e| e.size()).collect();
        let avg = if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        HypergraphStats {
            num_items: self.num_items,
            num_edges: self.edges.len(),
            max_degree: self.max_degree(),
            avg_edge_size: avg,
            empty_edges: sizes.iter().filter(|&&s| s == 0).count(),
            edges_with_unique_item: self
                .edges_with_unique_item()
                .into_iter()
                .filter(|&b| b)
                .count(),
        }
    }

    /// Histogram of edge sizes with `buckets` equal-width bins over
    /// `[0, max_size]` — the data behind Figure 4.
    pub fn edge_size_histogram(&self, buckets: usize) -> Vec<(usize, usize)> {
        assert!(buckets > 0);
        let max_size = self.edges.iter().map(|e| e.size()).max().unwrap_or(0);
        let width = (max_size / buckets).max(1);
        let mut hist = vec![0usize; buckets + 1];
        for e in &self.edges {
            let b = (e.size() / width).min(buckets);
            hist[b] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(b, count)| (b * width, count))
            .collect()
    }

    /// Restricts the hypergraph to the first `k` items: every edge keeps only
    /// items `< k`. Models shrinking the support set (Figure 8).
    pub fn restrict_items(&self, k: usize) -> Hypergraph {
        let mut h = Hypergraph::new(k.min(self.num_items));
        for e in &self.edges {
            let items: Vec<usize> = e.items.iter().copied().filter(|&j| j < k).collect();
            h.edges.push(Edge {
                items,
                valuation: e.valuation,
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let mut h = Hypergraph::new(5);
        h.add_edge(vec![0, 1], 10.0);
        h.add_edge(vec![1, 2, 3], 6.0);
        h.add_edge(vec![4], 3.0);
        h.add_edge(Vec::<usize>::new(), 1.0);
        h
    }

    #[test]
    fn add_edge_sorts_dedups_and_grows() {
        let mut h = Hypergraph::new(2);
        let idx = h.add_edge(vec![3, 1, 3], 2.0);
        assert_eq!(idx, 0);
        assert_eq!(h.edge(0).items, vec![1, 3]);
        assert_eq!(h.num_items(), 4);
        assert_eq!(h.edge(0).size(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_valuations_rejected() {
        let mut h = Hypergraph::new(1);
        h.add_edge(vec![0], -1.0);
    }

    #[test]
    fn degrees_and_stats() {
        let h = sample();
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.item_degrees(), vec![1, 2, 1, 1, 1]);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.total_valuation(), 20.0);
        assert_eq!(h.active_items(), vec![0, 1, 2, 3, 4]);
        let stats = h.stats();
        assert_eq!(stats.num_edges, 4);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.empty_edges, 1);
        assert!((stats.avg_edge_size - 1.5).abs() < 1e-12);
        // Edges 0,1,2 all contain a unique item; the empty edge does not.
        assert_eq!(stats.edges_with_unique_item, 3);
    }

    #[test]
    fn unique_item_detection() {
        let h = sample();
        assert_eq!(h.edges_with_unique_item(), vec![true, true, true, false]);
    }

    #[test]
    fn histogram_covers_all_edges() {
        let h = sample();
        let hist = h.edge_size_histogram(3);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.num_edges());
    }

    #[test]
    fn restrict_items_drops_high_indices() {
        let h = sample();
        let r = h.restrict_items(2);
        assert_eq!(r.num_items(), 2);
        assert_eq!(r.edge(0).items, vec![0, 1]);
        assert_eq!(r.edge(1).items, vec![1]);
        assert_eq!(r.edge(2).items, Vec::<usize>::new());
        // Valuations are preserved.
        assert_eq!(r.edge(1).valuation, 6.0);
    }

    #[test]
    fn set_valuations_rewrites_in_place() {
        let mut h = sample();
        h.set_valuations(|_, e| e.size() as f64 * 2.0);
        assert_eq!(h.edge(0).valuation, 4.0);
        assert_eq!(h.edge(3).valuation, 0.0);
    }
}
