//! The bundle hypergraph.
//!
//! ## Representation
//!
//! Hyperedges store their items as a [`qp_core::ItemSet`] bitset (u64
//! blocks), so membership tests are O(1), set algebra is block-wise, and an
//! edge over a support of 10,000 databases occupies ~1.2 KiB regardless of
//! bundle size. Call sites that still need the legacy sorted-`Vec<usize>`
//! shape go through [`Edge::items_vec`]; [`Hypergraph::add_edge`] keeps
//! accepting any `IntoIterator<Item = usize>` so construction code did not
//! have to change.
//!
//! ## The item index
//!
//! Aggregate item queries — per-item degrees, the maximum degree `B`,
//! unique-item flags, item→edge adjacency — used to be recomputed in
//! O(n · m) on every call, which Layering and CIP make many times per run.
//! They are answered by a lazily-built [`ItemIndex`] (per-item sorted
//! adjacency lists + cached degrees + a degree histogram + unique-item
//! flags) constructed on first use behind a [`OnceLock`].
//!
//! **Maintenance rules:** the index depends only on the *structure* of the
//! hypergraph (which edges contain which items), so
//!
//! * [`Hypergraph::add_edge`] / [`Hypergraph::add_edge_set`] **patch** a
//!   built index in place in O(|e|) (degrees, adjacency, max degree,
//!   unique-item flags) instead of dropping it; an unbuilt index stays
//!   unbuilt until the next aggregate query;
//! * [`Hypergraph::remove_edge`] patches the same way (the historical bug
//!   where removals would have left a stale index cannot recur: every
//!   structural mutation goes through the same patch-or-stay-unbuilt path);
//! * [`Hypergraph::set_valuations`] / [`Hypergraph::revalue_edge`] do **not**
//!   touch the index — valuations are not part of it;
//! * [`Hypergraph::restrict_items`] returns a fresh hypergraph with an empty
//!   cache.
//!
//! ## Deltas
//!
//! [`HypergraphDelta`] batches `add_edge` / `remove_edge` / `revalue_edge`
//! operations; [`Hypergraph::apply_delta`] applies them in order in
//! O(Σ|e| over the delta) — never a O(n·m) rescan — and returns the
//! [`AppliedOp`] log that incremental repricers
//! ([`crate::algorithms::IncrementalRepricer`]) consume to patch their
//! pricing in place. **Removal semantics:** `remove_edge(i)` swap-removes:
//! the last edge is renumbered to `i` (the `AppliedOp::Removed::moved` field
//! records the renumbering). Within a delta, edge indices refer to the
//! hypergraph state at the moment the operation applies, not the state
//! before the batch.

use std::sync::OnceLock;

use qp_core::ItemSet;

/// A hyperedge: a bundle of items (support-database indices) together with
/// the buyer's valuation for the corresponding query vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// The items of the bundle (the conflict set), as a bitset.
    pub items: ItemSet,
    /// The buyer's valuation `v_e ≥ 0`.
    pub valuation: f64,
}

impl Edge {
    /// Bundle size `|e|`.
    pub fn size(&self) -> usize {
        self.items.len()
    }

    /// The items as a sorted `Vec<usize>` — the compatibility surface for
    /// call sites not yet migrated to the bitset representation.
    pub fn items_vec(&self) -> Vec<usize> {
        self.items.to_vec()
    }
}

/// The hypergraph `H = (V, E)` of the paper: vertices are the `n` support
/// databases, hyperedges are buyer bundles (conflict sets) with valuations.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    num_items: usize,
    edges: Vec<Edge>,
    /// Lazily-built aggregate index; see the module docs for the
    /// maintenance rules (structural mutations patch it in place).
    index: OnceLock<ItemIndex>,
}

/// Cached aggregate item queries over a hypergraph: per-item degrees, the
/// maximum degree, active items, per-item sorted adjacency lists, and
/// per-edge unique-item flags. Built once per hypergraph structure and
/// **patched in place** by structural mutations (see the module docs).
///
/// Equality compares the observable state (degrees, max degree, active
/// items, adjacency, unique-item flags), so an incrementally-maintained
/// index can be tested against a from-scratch rebuild — the differential
/// oracle in `tests/differential_delta.rs` does exactly that.
#[derive(Debug, Clone, Default)]
pub struct ItemIndex {
    degrees: Vec<usize>,
    max_degree: usize,
    /// `degree_hist[d]` counts the items of degree `d`; lets `max_degree`
    /// decay in O(1) amortized when a removal lowers the top degree.
    degree_hist: Vec<usize>,
    active_items: Vec<usize>,
    /// The edges containing item `j`, ascending, are `adj[j]`.
    adj: Vec<Vec<usize>>,
    unique_item_flags: Vec<bool>,
}

impl PartialEq for ItemIndex {
    fn eq(&self, other: &ItemIndex) -> bool {
        // `degree_hist` may carry trailing-zero slack after removals; it is
        // derived state, so it does not participate in equality.
        self.degrees == other.degrees
            && self.max_degree == other.max_degree
            && self.active_items == other.active_items
            && self.adj == other.adj
            && self.unique_item_flags == other.unique_item_flags
    }
}

fn sorted_insert(v: &mut Vec<usize>, x: usize) {
    let i = v.partition_point(|&y| y < x);
    v.insert(i, x);
}

fn sorted_remove(v: &mut Vec<usize>, x: usize) {
    let i = v.partition_point(|&y| y < x);
    debug_assert_eq!(v.get(i), Some(&x), "adjacency list out of sync");
    v.remove(i);
}

impl ItemIndex {
    fn build(num_items: usize, edges: &[Edge]) -> ItemIndex {
        let mut degrees = vec![0usize; num_items];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_items];
        for (ei, e) in edges.iter().enumerate() {
            for j in e.items.iter() {
                degrees[j] += 1;
                adj[j].push(ei); // edges visited in order ⇒ lists ascending
            }
        }
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mut degree_hist = vec![0usize; max_degree + 1];
        for &d in &degrees {
            degree_hist[d] += 1;
        }
        let active_items: Vec<usize> = degrees
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(j, _)| j)
            .collect();

        let unique_item_flags = edges
            .iter()
            .map(|e| e.items.iter().any(|j| degrees[j] == 1))
            .collect();

        ItemIndex {
            degrees,
            max_degree,
            degree_hist,
            active_items,
            adj,
            unique_item_flags,
        }
    }

    /// Grows the per-item state to cover `n` items (new items have degree 0).
    fn ensure_items(&mut self, n: usize) {
        if n > self.degrees.len() {
            let grown = n - self.degrees.len();
            self.degrees.resize(n, 0);
            self.adj.resize_with(n, Vec::new);
            if self.degree_hist.is_empty() {
                self.degree_hist.push(0);
            }
            self.degree_hist[0] += grown;
        }
    }

    /// Raises item `j`'s degree by one, maintaining histogram, max degree,
    /// and the active-item list.
    fn raise_degree(&mut self, j: usize) {
        let d = self.degrees[j];
        self.degree_hist[d] -= 1;
        if d + 1 >= self.degree_hist.len() {
            self.degree_hist.push(0);
        }
        self.degree_hist[d + 1] += 1;
        self.degrees[j] = d + 1;
        if d == 0 {
            sorted_insert(&mut self.active_items, j);
        }
        if d + 1 > self.max_degree {
            self.max_degree = d + 1;
        }
    }

    /// Lowers item `j`'s degree by one; `max_degree` decays through the
    /// histogram when the last top-degree item loses an edge.
    fn lower_degree(&mut self, j: usize) {
        let d = self.degrees[j];
        debug_assert!(d > 0, "lowering the degree of an item with no edges");
        self.degree_hist[d] -= 1;
        self.degree_hist[d - 1] += 1;
        self.degrees[j] = d - 1;
        if d == 1 {
            sorted_remove(&mut self.active_items, j);
        }
        while self.max_degree > 0 && self.degree_hist[self.max_degree] == 0 {
            self.max_degree -= 1;
        }
    }

    fn recompute_flag(&self, edge: usize, edges: &[Edge]) -> bool {
        edges[edge].items.iter().any(|j| self.degrees[j] == 1)
    }

    /// Patches the index for the edge just pushed at `edge_id`
    /// (`edges[edge_id]` is the new edge). O(|e|) plus flag repairs for the
    /// edges that stop holding a unique item.
    fn note_add(&mut self, edge_id: usize, edges: &[Edge]) {
        let mut lost_unique = Vec::new(); // items whose degree went 1 → 2
        for j in edges[edge_id].items.iter() {
            self.adj[j].push(edge_id); // edge_id exceeds every existing id
            if self.degrees[j] == 1 {
                lost_unique.push(j);
            }
            self.raise_degree(j);
        }
        self.unique_item_flags
            .push(self.recompute_flag(edge_id, edges));
        for j in lost_unique {
            // Degree is now 2: the other holder may have lost its last
            // unique item.
            let other = self.adj[j][0];
            debug_assert_ne!(other, edge_id);
            self.unique_item_flags[other] = self.recompute_flag(other, edges);
        }
    }

    /// Patches the index after `edges.swap_remove(slot)` removed `removed`;
    /// `moved_from` is the former id of the edge now living at `slot` (if
    /// any). O(|removed| + |moved|) plus flag repairs for the edges that
    /// gain a unique item.
    fn note_remove(
        &mut self,
        slot: usize,
        removed: &Edge,
        moved_from: Option<usize>,
        edges: &[Edge],
    ) {
        let mut gained_unique = Vec::new(); // items whose degree went 2 → 1
        for j in removed.items.iter() {
            sorted_remove(&mut self.adj[j], slot);
            self.lower_degree(j);
            if self.degrees[j] == 1 {
                gained_unique.push(j);
            }
        }
        self.unique_item_flags.swap_remove(slot);
        if let Some(from) = moved_from {
            for j in edges[slot].items.iter() {
                sorted_remove(&mut self.adj[j], from); // `from` was the max id
                sorted_insert(&mut self.adj[j], slot);
            }
        }
        for j in gained_unique {
            // Exactly one holder remains (renumbered above if it moved).
            let only = self.adj[j][0];
            self.unique_item_flags[only] = true;
        }
    }

    /// Per-item degrees (number of hyperedges containing each item).
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// Maximum item degree `B`.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Items that appear in at least one hyperedge, in increasing order.
    pub fn active_items(&self) -> &[usize] {
        &self.active_items
    }

    /// The indices of the edges containing `item`, in increasing order.
    pub fn edges_containing(&self, item: usize) -> &[usize] {
        &self.adj[item]
    }

    /// For every edge, whether it contains an item of degree 1.
    pub fn unique_item_flags(&self) -> &[bool] {
        &self.unique_item_flags
    }
}

/// One structural or valuation mutation inside a [`HypergraphDelta`].
#[derive(Debug, Clone)]
pub enum DeltaOp {
    /// Append a hyperedge (see [`Hypergraph::add_edge_set`]).
    AddEdge {
        /// The new edge's bundle.
        items: ItemSet,
        /// The new edge's valuation (must be ≥ 0).
        valuation: f64,
    },
    /// Swap-remove the edge at `edge` (see [`Hypergraph::remove_edge`]).
    RemoveEdge {
        /// Index of the edge to remove, valid at the moment this op applies.
        edge: usize,
    },
    /// Replace the valuation of the edge at `edge`.
    RevalueEdge {
        /// Index of the edge to revalue, valid at the moment this op applies.
        edge: usize,
        /// The new valuation (must be ≥ 0).
        valuation: f64,
    },
}

/// An ordered batch of hypergraph mutations, applied atomically (from the
/// caller's perspective) by [`Hypergraph::apply_delta`].
///
/// Edge indices inside the batch refer to the hypergraph state **at the
/// moment the op applies** — a `remove_edge(3)` after two `add_edge`s sees
/// the two new edges already appended.
#[derive(Debug, Clone, Default)]
pub struct HypergraphDelta {
    ops: Vec<DeltaOp>,
}

impl HypergraphDelta {
    /// An empty delta.
    pub fn new() -> HypergraphDelta {
        HypergraphDelta::default()
    }

    /// Queues an edge addition.
    pub fn add_edge(&mut self, items: ItemSet, valuation: f64) -> &mut Self {
        self.ops.push(DeltaOp::AddEdge { items, valuation });
        self
    }

    /// Queues a (swap-)removal of the edge at `edge`.
    pub fn remove_edge(&mut self, edge: usize) -> &mut Self {
        self.ops.push(DeltaOp::RemoveEdge { edge });
        self
    }

    /// Queues a valuation replacement for the edge at `edge`.
    pub fn revalue_edge(&mut self, edge: usize, valuation: f64) -> &mut Self {
        self.ops.push(DeltaOp::RevalueEdge { edge, valuation });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Drops all queued operations.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

/// The log entry [`Hypergraph::apply_delta`] emits per applied [`DeltaOp`] —
/// everything an incremental repricer needs to patch its state without
/// rescanning the graph.
#[derive(Debug, Clone)]
pub enum AppliedOp {
    /// An edge was appended.
    Added {
        /// The new edge's index.
        edge: usize,
        /// The new edge's bundle size `|e|`.
        size: usize,
        /// The new edge's valuation.
        valuation: f64,
    },
    /// An edge was swap-removed.
    Removed {
        /// The removed edge (by value — the graph no longer owns it).
        edge: Edge,
        /// `Some((from, to))` when the former last edge was renumbered from
        /// index `from` to the vacated slot `to`; `None` when the removed
        /// edge was the last one.
        moved: Option<(usize, usize)>,
    },
    /// An edge's valuation was replaced.
    Revalued {
        /// The revalued edge's index **at the moment the op applied** — a
        /// later removal in the same batch may renumber or delete it, which
        /// is why the op carries the bundle size instead of leaving
        /// consumers to re-read it from the final graph.
        edge: usize,
        /// The revalued edge's bundle size `|e|`.
        size: usize,
        /// The previous valuation.
        old: f64,
        /// The new valuation.
        new: f64,
    },
}

/// Summary statistics of a hypergraph (Table 3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct HypergraphStats {
    /// Number of items `n = |S|`.
    pub num_items: usize,
    /// Number of hyperedges (queries) `m`.
    pub num_edges: usize,
    /// Maximum item degree `B`.
    pub max_degree: usize,
    /// Average hyperedge size.
    pub avg_edge_size: f64,
    /// Number of empty hyperedges.
    pub empty_edges: usize,
    /// Number of hyperedges that contain at least one item unique to them.
    pub edges_with_unique_item: usize,
}

impl Hypergraph {
    /// Creates a hypergraph over `num_items` items with no edges.
    pub fn new(num_items: usize) -> Self {
        Hypergraph {
            num_items,
            edges: Vec::new(),
            index: OnceLock::new(),
        }
    }

    /// Adds a hyperedge over `items` with valuation `valuation`; returns its
    /// index. Duplicate item indices collapse (the bundle is a set); indices
    /// beyond the current item count grow the vertex set.
    pub fn add_edge<I: IntoIterator<Item = usize>>(&mut self, items: I, valuation: f64) -> usize {
        self.add_edge_set(items.into_iter().collect(), valuation)
    }

    /// Adds a hyperedge that is already an [`ItemSet`] (the fast path used by
    /// the conflict engines — no intermediate `Vec`).
    ///
    /// A built [`ItemIndex`] is patched in place in O(|e|); an unbuilt one
    /// stays unbuilt (see the module docs for the maintenance rules).
    pub fn add_edge_set(&mut self, items: ItemSet, valuation: f64) -> usize {
        if let Some(max) = items.max_item() {
            self.num_items = self.num_items.max(max + 1);
        }
        assert!(valuation >= 0.0, "valuations must be non-negative");
        self.edges.push(Edge { items, valuation });
        let id = self.edges.len() - 1;
        if let Some(index) = self.index.get_mut() {
            index.ensure_items(self.num_items);
            index.note_add(id, &self.edges);
        }
        id
    }

    /// Removes the edge at `idx` by **swap-removal**: the last edge is
    /// renumbered to `idx` (O(1) edge movement), and a built [`ItemIndex`]
    /// is patched in place in O(|removed| + |moved|). The vertex set never
    /// shrinks — items keep their indices even at degree 0.
    ///
    /// Returns the removed edge.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_edge(&mut self, idx: usize) -> Edge {
        self.remove_edge_tracked(idx).0
    }

    /// [`Hypergraph::remove_edge`] plus the `(from, to)` renumbering the
    /// swap performed, if any — the single source of truth for the
    /// `AppliedOp::Removed::moved` field.
    fn remove_edge_tracked(&mut self, idx: usize) -> (Edge, Option<(usize, usize)>) {
        assert!(idx < self.edges.len(), "remove_edge: index out of range");
        let last = self.edges.len() - 1;
        let moved = (idx != last).then_some((last, idx));
        let removed = self.edges.swap_remove(idx);
        if let Some(index) = self.index.get_mut() {
            index.note_remove(idx, &removed, moved.map(|(from, _)| from), &self.edges);
        }
        (removed, moved)
    }

    /// Replaces the valuation of the edge at `idx`, returning the old value.
    /// Valuations are not part of the [`ItemIndex`], so the cached index
    /// survives untouched.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `valuation` is negative.
    pub fn revalue_edge(&mut self, idx: usize, valuation: f64) -> f64 {
        assert!(valuation >= 0.0, "valuations must be non-negative");
        std::mem::replace(&mut self.edges[idx].valuation, valuation)
    }

    /// Applies a batch of mutations in order (see [`HypergraphDelta`] for
    /// the index semantics) and returns the per-op [`AppliedOp`] log that
    /// incremental repricers consume.
    ///
    /// Cost is O(Σ|e| over touched edges) — a built [`ItemIndex`] is patched
    /// op by op, never rebuilt.
    pub fn apply_delta(&mut self, delta: HypergraphDelta) -> Vec<AppliedOp> {
        let mut delta = delta;
        let mut applied = Vec::with_capacity(delta.ops.len());
        self.apply_delta_drain(&mut delta, &mut applied);
        applied
    }

    /// [`Hypergraph::apply_delta`] draining a caller-owned delta into a
    /// caller-owned log, so a steady-state caller (the simulator's demand
    /// window, once per tick) reuses both buffers instead of allocating
    /// them anew. `delta` is left empty and ready to refill; `ops` is
    /// cleared first and holds the same per-op log `apply_delta` returns.
    pub fn apply_delta_drain(&mut self, delta: &mut HypergraphDelta, ops: &mut Vec<AppliedOp>) {
        ops.clear();
        ops.reserve(delta.ops.len());
        for op in delta.ops.drain(..) {
            match op {
                DeltaOp::AddEdge { items, valuation } => {
                    let edge = self.add_edge_set(items, valuation);
                    ops.push(AppliedOp::Added {
                        edge,
                        size: self.edges[edge].size(),
                        valuation,
                    });
                }
                DeltaOp::RemoveEdge { edge } => {
                    let (removed, moved) = self.remove_edge_tracked(edge);
                    ops.push(AppliedOp::Removed {
                        edge: removed,
                        moved,
                    });
                }
                DeltaOp::RevalueEdge { edge, valuation } => {
                    let old = self.revalue_edge(edge, valuation);
                    ops.push(AppliedOp::Revalued {
                        edge,
                        size: self.edges[edge].size(),
                        old,
                        new: valuation,
                    });
                }
            }
        }
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of hyperedges `m`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// A single hyperedge.
    pub fn edge(&self, idx: usize) -> &Edge {
        &self.edges[idx]
    }

    /// The aggregate item index, building it on first use.
    pub fn item_index(&self) -> &ItemIndex {
        self.index
            .get_or_init(|| ItemIndex::build(self.num_items, &self.edges))
    }

    /// Replaces every valuation using `f(edge index, edge) -> new valuation`.
    ///
    /// Valuations are not part of the [`ItemIndex`], so the cached index
    /// survives this call.
    pub fn set_valuations<F: FnMut(usize, &Edge) -> f64>(&mut self, mut f: F) {
        for i in 0..self.edges.len() {
            let v = f(i, &self.edges[i]);
            assert!(v >= 0.0, "valuations must be non-negative");
            self.edges[i].valuation = v;
        }
    }

    /// Sum of all valuations — the coarse revenue upper bound used throughout
    /// the paper.
    pub fn total_valuation(&self) -> f64 {
        self.edges.iter().map(|e| e.valuation).sum()
    }

    /// Per-item degrees (number of hyperedges containing each item).
    /// O(1) after the first aggregate query on this structure.
    pub fn item_degrees(&self) -> &[usize] {
        self.item_index().degrees()
    }

    /// Maximum item degree `B`. O(1) after the first aggregate query.
    pub fn max_degree(&self) -> usize {
        self.item_index().max_degree()
    }

    /// Items that appear in at least one hyperedge, in increasing order.
    pub fn active_items(&self) -> &[usize] {
        self.item_index().active_items()
    }

    /// The indices of the edges containing `item`.
    pub fn edges_containing(&self, item: usize) -> &[usize] {
        self.item_index().edges_containing(item)
    }

    /// For every edge, whether it contains an item that belongs to no other
    /// edge ("unique item" in the paper's layering analysis).
    pub fn edges_with_unique_item(&self) -> &[bool] {
        self.item_index().unique_item_flags()
    }

    /// Summary statistics (Table 3 / Figure 4 of the paper).
    pub fn stats(&self) -> HypergraphStats {
        let sizes: Vec<usize> = self.edges.iter().map(|e| e.size()).collect();
        let avg = if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        HypergraphStats {
            num_items: self.num_items,
            num_edges: self.edges.len(),
            max_degree: self.max_degree(),
            avg_edge_size: avg,
            empty_edges: sizes.iter().filter(|&&s| s == 0).count(),
            edges_with_unique_item: self.edges_with_unique_item().iter().filter(|&&b| b).count(),
        }
    }

    /// Histogram of edge sizes — the data behind Figure 4. Bins have equal
    /// width `ceil(max_size / buckets)` and cover `[0, max_size]` inclusive
    /// (so up to `buckets + 1` entries, fewer when `max_size < buckets`).
    /// Each entry is `(lower bound of the bin, count)`; bins are derived
    /// from the actual maximum edge size, so no empty trailing bins past
    /// `max_size` are emitted and every label is a size that can occur.
    pub fn edge_size_histogram(&self, buckets: usize) -> Vec<(usize, usize)> {
        assert!(buckets > 0);
        let max_size = self.edges.iter().map(|e| e.size()).max().unwrap_or(0);
        let width = max_size.div_ceil(buckets).max(1);
        let bins = max_size / width + 1;
        let mut hist = vec![0usize; bins];
        for e in &self.edges {
            hist[e.size() / width] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(b, count)| (b * width, count))
            .collect()
    }

    /// Restricts the hypergraph to the first `k` items: every edge keeps only
    /// items `< k`. Models shrinking the support set (Figure 8).
    pub fn restrict_items(&self, k: usize) -> Hypergraph {
        let mut h = Hypergraph::new(k.min(self.num_items));
        for e in &self.edges {
            h.edges.push(Edge {
                items: e.items.restricted_below(k),
                valuation: e.valuation,
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let mut h = Hypergraph::new(5);
        h.add_edge(vec![0, 1], 10.0);
        h.add_edge(vec![1, 2, 3], 6.0);
        h.add_edge(vec![4], 3.0);
        h.add_edge(Vec::<usize>::new(), 1.0);
        h
    }

    #[test]
    fn add_edge_dedups_and_grows() {
        let mut h = Hypergraph::new(2);
        let idx = h.add_edge(vec![3, 1, 3], 2.0);
        assert_eq!(idx, 0);
        assert_eq!(h.edge(0).items_vec(), vec![1, 3]);
        assert_eq!(h.num_items(), 4);
        assert_eq!(h.edge(0).size(), 2);
        assert!(h.edge(0).items.contains(3));
        assert!(!h.edge(0).items.contains(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_valuations_rejected() {
        let mut h = Hypergraph::new(1);
        h.add_edge(vec![0], -1.0);
    }

    #[test]
    fn degrees_and_stats() {
        let h = sample();
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.item_degrees(), vec![1, 2, 1, 1, 1]);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.total_valuation(), 20.0);
        assert_eq!(h.active_items(), vec![0, 1, 2, 3, 4]);
        let stats = h.stats();
        assert_eq!(stats.num_edges, 4);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.empty_edges, 1);
        assert!((stats.avg_edge_size - 1.5).abs() < 1e-12);
        // Edges 0,1,2 all contain a unique item; the empty edge does not.
        assert_eq!(stats.edges_with_unique_item, 3);
    }

    #[test]
    fn unique_item_detection() {
        let h = sample();
        assert_eq!(h.edges_with_unique_item(), vec![true, true, true, false]);
    }

    #[test]
    fn csr_adjacency_lists_the_right_edges() {
        let h = sample();
        assert_eq!(h.edges_containing(1), &[0, 1]);
        assert_eq!(h.edges_containing(0), &[0]);
        assert_eq!(h.edges_containing(4), &[2]);
        let idx = h.item_index();
        assert_eq!(idx.max_degree(), 2);
        assert_eq!(idx.degrees()[1], 2);
    }

    #[test]
    fn index_is_maintained_across_structural_changes() {
        let mut h = sample();
        assert_eq!(h.max_degree(), 2); // builds the index
        h.add_edge(vec![1, 4], 2.0); // structural: patched in place
        assert_eq!(h.max_degree(), 3);
        assert_eq!(h.edges_containing(4), &[2, 4]);
        h.set_valuations(|_, e| e.valuation * 2.0); // non-structural
        assert_eq!(h.max_degree(), 3);
        assert_eq!(h.total_valuation(), 44.0);
    }

    #[test]
    fn remove_edge_swap_removes_and_patches_the_index() {
        let mut h = sample();
        h.add_edge(vec![1, 4], 2.0); // edge 4
        assert_eq!(h.max_degree(), 3); // item 1 in edges 0, 1, 4

        // Remove edge 1 ({1,2,3}): edge 4 ({1,4}) is renumbered to slot 1.
        let removed = h.remove_edge(1);
        assert_eq!(removed.items_vec(), vec![1, 2, 3]);
        assert_eq!(removed.valuation, 6.0);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.edge(1).items_vec(), vec![1, 4]);

        // The patched index must agree with a from-scratch rebuild.
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.item_degrees(), vec![1, 2, 0, 0, 2]);
        assert_eq!(h.edges_containing(1), &[0, 1]);
        assert_eq!(h.edges_containing(4), &[1, 2]);
        assert_eq!(h.active_items(), vec![0, 1, 4]);
        let mut rebuilt = Hypergraph::new(h.num_items());
        for e in h.edges() {
            rebuilt.add_edge_set(e.items.clone(), e.valuation);
        }
        assert_eq!(h.item_index(), rebuilt.item_index());

        // Removing the current last edge needs no renumbering.
        let last = h.num_edges() - 1;
        h.remove_edge(last);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.max_degree(), 2);
    }

    #[test]
    fn remove_edge_restores_unique_item_flags() {
        // Items 0 and 1 shared by two edges each; removing one of the two
        // makes the survivor's items unique again.
        let mut h = Hypergraph::new(2);
        h.add_edge(vec![0, 1], 4.0);
        h.add_edge(vec![0, 1], 3.0);
        assert_eq!(h.edges_with_unique_item(), vec![false, false]);
        h.remove_edge(0);
        assert_eq!(h.edges_with_unique_item(), vec![true]);
        assert_eq!(h.edge(0).valuation, 3.0);
    }

    #[test]
    fn apply_delta_logs_every_op_with_swap_semantics() {
        let mut h = sample();
        h.item_index(); // force the index so the delta path patches it

        let mut delta = HypergraphDelta::new();
        delta
            .add_edge([1usize, 4].into_iter().collect(), 7.0)
            .revalue_edge(0, 12.5)
            .remove_edge(1);
        assert_eq!(delta.len(), 3);
        let ops = h.apply_delta(delta);
        assert_eq!(ops.len(), 3);
        assert!(matches!(
            ops[0],
            AppliedOp::Added {
                edge: 4,
                size: 2,
                valuation
            } if valuation == 7.0
        ));
        assert!(matches!(
            ops[1],
            AppliedOp::Revalued { edge: 0, old, new, .. } if old == 10.0 && new == 12.5
        ));
        // Removing edge 1 of 5: the added edge (index 4) fills the slot.
        let AppliedOp::Removed { edge, moved } = &ops[2] else {
            panic!("third op must be a removal");
        };
        assert_eq!(edge.items_vec(), vec![1, 2, 3]);
        assert_eq!(*moved, Some((4, 1)));
        assert_eq!(h.edge(1).items_vec(), vec![1, 4]);
        assert_eq!(h.edge(0).valuation, 12.5);

        let mut rebuilt = Hypergraph::new(h.num_items());
        for e in h.edges() {
            rebuilt.add_edge_set(e.items.clone(), e.valuation);
        }
        assert_eq!(h.item_index(), rebuilt.item_index());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remove_edge_rejects_bad_indices() {
        let mut h = sample();
        h.remove_edge(99);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn revalue_edge_rejects_negative_valuations() {
        let mut h = sample();
        h.revalue_edge(0, -2.0);
    }

    #[test]
    fn histogram_covers_all_edges() {
        let h = sample();
        let hist = h.edge_size_histogram(3);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.num_edges());
    }

    #[test]
    fn histogram_trims_bins_to_the_actual_max_size() {
        // max edge size 2 with 10 requested buckets: the old implementation
        // emitted 11 bins with labels up to 10; now bins stop at max_size.
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0], 1.0);
        h.add_edge(vec![0, 1], 1.0);
        h.add_edge(vec![1, 2], 1.0);
        let hist = h.edge_size_histogram(10);
        assert_eq!(hist, vec![(0, 0), (1, 1), (2, 2)]);

        // Wide edges still bucket with equal widths derived from max_size.
        let mut wide = Hypergraph::new(9);
        wide.add_edge(0..9, 1.0); // size 9
        wide.add_edge(0..2, 1.0); // size 2
        let hist = wide.edge_size_histogram(3);
        assert_eq!(hist, vec![(0, 1), (3, 0), (6, 0), (9, 1)]);
    }

    #[test]
    fn restrict_items_drops_high_indices() {
        let h = sample();
        let r = h.restrict_items(2);
        assert_eq!(r.num_items(), 2);
        assert_eq!(r.edge(0).items_vec(), vec![0, 1]);
        assert_eq!(r.edge(1).items_vec(), vec![1]);
        assert_eq!(r.edge(2).items_vec(), Vec::<usize>::new());
        // Valuations are preserved.
        assert_eq!(r.edge(1).valuation, 6.0);
    }

    #[test]
    fn set_valuations_rewrites_in_place() {
        let mut h = sample();
        h.set_valuations(|_, e| e.size() as f64 * 2.0);
        assert_eq!(h.edge(0).valuation, 4.0);
        assert_eq!(h.edge(3).valuation, 0.0);
    }
}
