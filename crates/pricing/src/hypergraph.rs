//! The bundle hypergraph.
//!
//! ## Representation
//!
//! Hyperedges store their items as a [`qp_core::ItemSet`] bitset (u64
//! blocks), so membership tests are O(1), set algebra is block-wise, and an
//! edge over a support of 10,000 databases occupies ~1.2 KiB regardless of
//! bundle size. Call sites that still need the legacy sorted-`Vec<usize>`
//! shape go through [`Edge::items_vec`]; [`Hypergraph::add_edge`] keeps
//! accepting any `IntoIterator<Item = usize>` so construction code did not
//! have to change.
//!
//! ## The item index
//!
//! Aggregate item queries — per-item degrees, the maximum degree `B`,
//! unique-item flags, item→edge adjacency — used to be recomputed in
//! O(n · m) on every call, which Layering and CIP make many times per run.
//! They are now answered by a lazily-built [`ItemIndex`] (CSR adjacency +
//! cached degrees + unique-item flags) constructed on first use behind a
//! [`OnceLock`].
//!
//! **Invalidation rules:** the index depends only on the *structure* of the
//! hypergraph (which edges contain which items), so
//!
//! * [`Hypergraph::add_edge`] / [`Hypergraph::add_edge_set`] drop the cached
//!   index (it is rebuilt on the next aggregate query);
//! * [`Hypergraph::set_valuations`] does **not** invalidate — valuations are
//!   not part of the index;
//! * [`Hypergraph::restrict_items`] returns a fresh hypergraph with an empty
//!   cache.

use std::sync::OnceLock;

use qp_core::ItemSet;

/// A hyperedge: a bundle of items (support-database indices) together with
/// the buyer's valuation for the corresponding query vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// The items of the bundle (the conflict set), as a bitset.
    pub items: ItemSet,
    /// The buyer's valuation `v_e ≥ 0`.
    pub valuation: f64,
}

impl Edge {
    /// Bundle size `|e|`.
    pub fn size(&self) -> usize {
        self.items.len()
    }

    /// The items as a sorted `Vec<usize>` — the compatibility surface for
    /// call sites not yet migrated to the bitset representation.
    pub fn items_vec(&self) -> Vec<usize> {
        self.items.to_vec()
    }
}

/// The hypergraph `H = (V, E)` of the paper: vertices are the `n` support
/// databases, hyperedges are buyer bundles (conflict sets) with valuations.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    num_items: usize,
    edges: Vec<Edge>,
    /// Lazily-built aggregate index; see the module docs for the
    /// invalidation rules.
    index: OnceLock<ItemIndex>,
}

/// Cached aggregate item queries over a hypergraph: per-item degrees, the
/// maximum degree, active items, a CSR item→edge adjacency, and per-edge
/// unique-item flags. Built once per hypergraph structure (see the module
/// docs for when it is invalidated).
#[derive(Debug, Clone, Default)]
pub struct ItemIndex {
    degrees: Vec<usize>,
    max_degree: usize,
    active_items: Vec<usize>,
    /// CSR offsets: the edges containing item `j` are
    /// `edge_ids[edge_offsets[j]..edge_offsets[j + 1]]`.
    edge_offsets: Vec<usize>,
    edge_ids: Vec<usize>,
    unique_item_flags: Vec<bool>,
}

impl ItemIndex {
    fn build(num_items: usize, edges: &[Edge]) -> ItemIndex {
        let mut degrees = vec![0usize; num_items];
        for e in edges {
            for j in e.items.iter() {
                degrees[j] += 1;
            }
        }
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let active_items: Vec<usize> = degrees
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(j, _)| j)
            .collect();

        let mut edge_offsets = vec![0usize; num_items + 1];
        for (j, &d) in degrees.iter().enumerate() {
            edge_offsets[j + 1] = edge_offsets[j] + d;
        }
        let mut cursor = edge_offsets.clone();
        let mut edge_ids = vec![0usize; edge_offsets[num_items]];
        for (ei, e) in edges.iter().enumerate() {
            for j in e.items.iter() {
                edge_ids[cursor[j]] = ei;
                cursor[j] += 1;
            }
        }

        let unique_item_flags = edges
            .iter()
            .map(|e| e.items.iter().any(|j| degrees[j] == 1))
            .collect();

        ItemIndex {
            degrees,
            max_degree,
            active_items,
            edge_offsets,
            edge_ids,
            unique_item_flags,
        }
    }

    /// Per-item degrees (number of hyperedges containing each item).
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// Maximum item degree `B`.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Items that appear in at least one hyperedge, in increasing order.
    pub fn active_items(&self) -> &[usize] {
        &self.active_items
    }

    /// The indices of the edges containing `item` (CSR adjacency lookup).
    pub fn edges_containing(&self, item: usize) -> &[usize] {
        &self.edge_ids[self.edge_offsets[item]..self.edge_offsets[item + 1]]
    }

    /// For every edge, whether it contains an item of degree 1.
    pub fn unique_item_flags(&self) -> &[bool] {
        &self.unique_item_flags
    }
}

/// Summary statistics of a hypergraph (Table 3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct HypergraphStats {
    /// Number of items `n = |S|`.
    pub num_items: usize,
    /// Number of hyperedges (queries) `m`.
    pub num_edges: usize,
    /// Maximum item degree `B`.
    pub max_degree: usize,
    /// Average hyperedge size.
    pub avg_edge_size: f64,
    /// Number of empty hyperedges.
    pub empty_edges: usize,
    /// Number of hyperedges that contain at least one item unique to them.
    pub edges_with_unique_item: usize,
}

impl Hypergraph {
    /// Creates a hypergraph over `num_items` items with no edges.
    pub fn new(num_items: usize) -> Self {
        Hypergraph {
            num_items,
            edges: Vec::new(),
            index: OnceLock::new(),
        }
    }

    /// Adds a hyperedge over `items` with valuation `valuation`; returns its
    /// index. Duplicate item indices collapse (the bundle is a set); indices
    /// beyond the current item count grow the vertex set.
    pub fn add_edge<I: IntoIterator<Item = usize>>(&mut self, items: I, valuation: f64) -> usize {
        self.add_edge_set(items.into_iter().collect(), valuation)
    }

    /// Adds a hyperedge that is already an [`ItemSet`] (the fast path used by
    /// the conflict engines — no intermediate `Vec`).
    pub fn add_edge_set(&mut self, items: ItemSet, valuation: f64) -> usize {
        if let Some(max) = items.max_item() {
            self.num_items = self.num_items.max(max + 1);
        }
        assert!(valuation >= 0.0, "valuations must be non-negative");
        self.edges.push(Edge { items, valuation });
        self.index = OnceLock::new(); // structural change: drop the cache
        self.edges.len() - 1
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of hyperedges `m`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// A single hyperedge.
    pub fn edge(&self, idx: usize) -> &Edge {
        &self.edges[idx]
    }

    /// The aggregate item index, building it on first use.
    pub fn item_index(&self) -> &ItemIndex {
        self.index
            .get_or_init(|| ItemIndex::build(self.num_items, &self.edges))
    }

    /// Replaces every valuation using `f(edge index, edge) -> new valuation`.
    ///
    /// Valuations are not part of the [`ItemIndex`], so the cached index
    /// survives this call.
    pub fn set_valuations<F: FnMut(usize, &Edge) -> f64>(&mut self, mut f: F) {
        for i in 0..self.edges.len() {
            let v = f(i, &self.edges[i]);
            assert!(v >= 0.0, "valuations must be non-negative");
            self.edges[i].valuation = v;
        }
    }

    /// Sum of all valuations — the coarse revenue upper bound used throughout
    /// the paper.
    pub fn total_valuation(&self) -> f64 {
        self.edges.iter().map(|e| e.valuation).sum()
    }

    /// Per-item degrees (number of hyperedges containing each item).
    /// O(1) after the first aggregate query on this structure.
    pub fn item_degrees(&self) -> &[usize] {
        self.item_index().degrees()
    }

    /// Maximum item degree `B`. O(1) after the first aggregate query.
    pub fn max_degree(&self) -> usize {
        self.item_index().max_degree()
    }

    /// Items that appear in at least one hyperedge, in increasing order.
    pub fn active_items(&self) -> &[usize] {
        self.item_index().active_items()
    }

    /// The indices of the edges containing `item`.
    pub fn edges_containing(&self, item: usize) -> &[usize] {
        self.item_index().edges_containing(item)
    }

    /// For every edge, whether it contains an item that belongs to no other
    /// edge ("unique item" in the paper's layering analysis).
    pub fn edges_with_unique_item(&self) -> &[bool] {
        self.item_index().unique_item_flags()
    }

    /// Summary statistics (Table 3 / Figure 4 of the paper).
    pub fn stats(&self) -> HypergraphStats {
        let sizes: Vec<usize> = self.edges.iter().map(|e| e.size()).collect();
        let avg = if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        HypergraphStats {
            num_items: self.num_items,
            num_edges: self.edges.len(),
            max_degree: self.max_degree(),
            avg_edge_size: avg,
            empty_edges: sizes.iter().filter(|&&s| s == 0).count(),
            edges_with_unique_item: self.edges_with_unique_item().iter().filter(|&&b| b).count(),
        }
    }

    /// Histogram of edge sizes — the data behind Figure 4. Bins have equal
    /// width `ceil(max_size / buckets)` and cover `[0, max_size]` inclusive
    /// (so up to `buckets + 1` entries, fewer when `max_size < buckets`).
    /// Each entry is `(lower bound of the bin, count)`; bins are derived
    /// from the actual maximum edge size, so no empty trailing bins past
    /// `max_size` are emitted and every label is a size that can occur.
    pub fn edge_size_histogram(&self, buckets: usize) -> Vec<(usize, usize)> {
        assert!(buckets > 0);
        let max_size = self.edges.iter().map(|e| e.size()).max().unwrap_or(0);
        let width = max_size.div_ceil(buckets).max(1);
        let bins = max_size / width + 1;
        let mut hist = vec![0usize; bins];
        for e in &self.edges {
            hist[e.size() / width] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(b, count)| (b * width, count))
            .collect()
    }

    /// Restricts the hypergraph to the first `k` items: every edge keeps only
    /// items `< k`. Models shrinking the support set (Figure 8).
    pub fn restrict_items(&self, k: usize) -> Hypergraph {
        let mut h = Hypergraph::new(k.min(self.num_items));
        for e in &self.edges {
            h.edges.push(Edge {
                items: e.items.restricted_below(k),
                valuation: e.valuation,
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let mut h = Hypergraph::new(5);
        h.add_edge(vec![0, 1], 10.0);
        h.add_edge(vec![1, 2, 3], 6.0);
        h.add_edge(vec![4], 3.0);
        h.add_edge(Vec::<usize>::new(), 1.0);
        h
    }

    #[test]
    fn add_edge_dedups_and_grows() {
        let mut h = Hypergraph::new(2);
        let idx = h.add_edge(vec![3, 1, 3], 2.0);
        assert_eq!(idx, 0);
        assert_eq!(h.edge(0).items_vec(), vec![1, 3]);
        assert_eq!(h.num_items(), 4);
        assert_eq!(h.edge(0).size(), 2);
        assert!(h.edge(0).items.contains(3));
        assert!(!h.edge(0).items.contains(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_valuations_rejected() {
        let mut h = Hypergraph::new(1);
        h.add_edge(vec![0], -1.0);
    }

    #[test]
    fn degrees_and_stats() {
        let h = sample();
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.item_degrees(), vec![1, 2, 1, 1, 1]);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.total_valuation(), 20.0);
        assert_eq!(h.active_items(), vec![0, 1, 2, 3, 4]);
        let stats = h.stats();
        assert_eq!(stats.num_edges, 4);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.empty_edges, 1);
        assert!((stats.avg_edge_size - 1.5).abs() < 1e-12);
        // Edges 0,1,2 all contain a unique item; the empty edge does not.
        assert_eq!(stats.edges_with_unique_item, 3);
    }

    #[test]
    fn unique_item_detection() {
        let h = sample();
        assert_eq!(h.edges_with_unique_item(), vec![true, true, true, false]);
    }

    #[test]
    fn csr_adjacency_lists_the_right_edges() {
        let h = sample();
        assert_eq!(h.edges_containing(1), &[0, 1]);
        assert_eq!(h.edges_containing(0), &[0]);
        assert_eq!(h.edges_containing(4), &[2]);
        let idx = h.item_index();
        assert_eq!(idx.max_degree(), 2);
        assert_eq!(idx.degrees()[1], 2);
    }

    #[test]
    fn index_is_invalidated_by_structural_changes_only() {
        let mut h = sample();
        assert_eq!(h.max_degree(), 2); // builds the index
        h.add_edge(vec![1, 4], 2.0); // structural: must invalidate
        assert_eq!(h.max_degree(), 3);
        assert_eq!(h.edges_containing(4), &[2, 4]);
        h.set_valuations(|_, e| e.valuation * 2.0); // non-structural
        assert_eq!(h.max_degree(), 3);
        assert_eq!(h.total_valuation(), 44.0);
    }

    #[test]
    fn histogram_covers_all_edges() {
        let h = sample();
        let hist = h.edge_size_histogram(3);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.num_edges());
    }

    #[test]
    fn histogram_trims_bins_to_the_actual_max_size() {
        // max edge size 2 with 10 requested buckets: the old implementation
        // emitted 11 bins with labels up to 10; now bins stop at max_size.
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0], 1.0);
        h.add_edge(vec![0, 1], 1.0);
        h.add_edge(vec![1, 2], 1.0);
        let hist = h.edge_size_histogram(10);
        assert_eq!(hist, vec![(0, 0), (1, 1), (2, 2)]);

        // Wide edges still bucket with equal widths derived from max_size.
        let mut wide = Hypergraph::new(9);
        wide.add_edge(0..9, 1.0); // size 9
        wide.add_edge(0..2, 1.0); // size 2
        let hist = wide.edge_size_histogram(3);
        assert_eq!(hist, vec![(0, 1), (3, 0), (6, 0), (9, 1)]);
    }

    #[test]
    fn restrict_items_drops_high_indices() {
        let h = sample();
        let r = h.restrict_items(2);
        assert_eq!(r.num_items(), 2);
        assert_eq!(r.edge(0).items_vec(), vec![0, 1]);
        assert_eq!(r.edge(1).items_vec(), vec![1]);
        assert_eq!(r.edge(2).items_vec(), Vec::<usize>::new());
        // Valuations are preserved.
        assert_eq!(r.edge(1).valuation, 6.0);
    }

    #[test]
    fn set_valuations_rewrites_in_place() {
        let mut h = sample();
        h.set_valuations(|_, e| e.size() as f64 * 2.0);
        assert_eq!(h.edge(0).valuation, 4.0);
        assert_eq!(h.edge(3).valuation, 0.0);
    }
}
