//! UIP — uniform item pricing (Guruswami et al., paper §5.2).
//!
//! Every item gets the same weight `w`. The candidate weights are the rates
//! `q_e = v_e / |e|`; setting `w = q_e` sells exactly the bundles whose rate
//! is at least `q_e`, so sorting by rate and keeping prefix sums of bundle
//! sizes finds the optimum in `O(m log m)`. The guarantee is
//! `O(log n + log m)` with respect to Σ valuations.

use crate::{revenue, Hypergraph, Pricing, PricingOutcome};

/// Computes the revenue-optimal *uniform* item pricing.
pub fn uniform_item_price(h: &Hypergraph) -> PricingOutcome {
    // Candidate rates from non-empty bundles.
    let mut rated: Vec<(f64, usize)> = h
        .edges()
        .iter()
        .filter(|e| e.size() > 0)
        .map(|e| (e.valuation / e.size() as f64, e.size()))
        .collect();
    rated.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut best_w = 0.0;
    let mut best_rev = 0.0;
    let mut prefix_items = 0usize;
    for &(rate, size) in &rated {
        prefix_items += size;
        // Selling at per-item rate `rate` sells every bundle whose own rate is
        // >= rate; each pays rate * |e|.
        let rev = rate * prefix_items as f64;
        if rev > best_rev {
            best_rev = rev;
            best_w = rate;
        }
    }

    let weights = vec![best_w; h.num_items()];
    let pricing = Pricing::Item { weights };
    let rev = revenue::revenue(h, &pricing);
    PricingOutcome {
        algorithm: "UIP",
        revenue: rev,
        pricing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support;
    use crate::revenue::item_pricing_revenue;

    #[test]
    fn small_instance_is_optimal_among_uniform_rates() {
        let h = test_support::small();
        let out = uniform_item_price(&h);
        assert_eq!(out.algorithm, "UIP");
        // Brute-force over the candidate rates.
        let mut best = 0.0f64;
        for e in h.edges() {
            if e.size() == 0 {
                continue;
            }
            let w = e.valuation / e.size() as f64;
            let weights = vec![w; h.num_items()];
            best = best.max(item_pricing_revenue(&h, &weights));
        }
        assert!((out.revenue - best).abs() < 1e-9);
        assert!(out.revenue > 0.0);
    }

    #[test]
    fn uniform_valuation_star_extracts_everything() {
        // All bundles have size 2 and valuation 6: rate 3 sells all.
        let h = test_support::star(&[6.0; 5]);
        let out = uniform_item_price(&h);
        assert!((out.revenue - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_size_edges_are_handled() {
        let mut h = Hypergraph::new(2);
        h.add_edge(Vec::<usize>::new(), 5.0);
        h.add_edge(vec![0], 3.0);
        let out = uniform_item_price(&h);
        // Weight 3 on the single item sells both (empty bundle at price 0).
        assert!((out.revenue - 3.0).abs() < 1e-9);

        let empty = Hypergraph::new(0);
        assert_eq!(uniform_item_price(&empty).revenue, 0.0);
    }

    #[test]
    fn returns_a_uniform_weight_vector() {
        let h = test_support::unique_items();
        let out = uniform_item_price(&h);
        let w = out.pricing.item_weights().unwrap();
        assert!(w.windows(2).all(|p| (p[0] - p[1]).abs() < 1e-12));
    }

    #[test]
    fn never_beats_lp_item_pricing_upper_bound() {
        // Sanity: UIP revenue is at most the sum of valuations.
        let h = test_support::star(&[1.0, 2.0, 4.0, 8.0, 16.0]);
        let out = uniform_item_price(&h);
        assert!(out.revenue <= h.total_valuation() + 1e-9);
    }
}
