//! Incremental repricing: patch a pricing in place as demand changes.
//!
//! The paper's algorithms assume a static demand hypergraph; a live market
//! learns demand from buyer interactions (the online setting of *Pricing
//! Queries (Approximately) Optimally*), so repricing is a hot path. This
//! module is the `RepriceIncremental` capability: algorithms whose optimum
//! has a cheap update rule expose an [`IncrementalRepricer`] through
//! [`super::PricingAlgorithm::reprice_incremental`], and the [`Repricer`]
//! driver transparently falls back to a full recompute for the rest.
//!
//! Cheap update rules implemented here:
//!
//! * **UBP** ([`UbpIncremental`], exact) — the optimal uniform bundle price
//!   depends only on the multiset of valuations. A sorted run-length
//!   multiset (contiguous `Vec`, keyed by the valuation's IEEE-754 bits,
//!   which order identically to the non-negative floats themselves)
//!   absorbs each delta as one O(m + |delta| log |delta|) three-way merge;
//!   the optimum is re-read with one cache-friendly descending scan over
//!   the *distinct* values — no hypergraph rebuild, no O(m log m) re-sort.
//! * **UIP** ([`UipIncremental`], exact) — the same run-length idea over
//!   the candidate rates `v_e / |e|`, but stored as a flat struct-of-arrays
//!   [`RateTable`] (`keys` / `counts` / `sizes` in three parallel `Vec`s)
//!   merged by a **galloping two-pointer batch merge**: the sorted delta is
//!   coalesced per distinct key, the next affected base key is found by
//!   exponential-then-binary search, and the unaffected runs in between are
//!   bulk-copied with `extend_from_slice`. A 1% delta against a 10k-rate
//!   table thus costs a handful of memcpys plus O(|delta| log m) probes
//!   instead of a 10k-entry branchy walk. The pre-rewrite per-entry walk is
//!   kept in [`mod@reference`] as the differential oracle
//!   (`tests/differential_merge.rs` proves batch-merge bit-identity) and
//!   the benchmark baseline.
//!
//! Both exact rules double-buffer their state (`merge into next, swap`), so
//! steady-state repricing reuses the same allocations tick after tick.
//! * **XOS** ([`XosIncremental`], *not* exact) — re-fitting the LPIP/CIP
//!   components means re-running LPs, so the incremental rule keeps the
//!   fitted envelope and re-evaluates its revenue on the updated demand,
//!   re-fitting the components (a full LP recompute) once the absorbed
//!   churn exceeds [`XosIncremental::with_refit_after`]'s fraction of the edge count.
//!
//! "Exact" means the incrementally-maintained pricing is **identical** to
//! what a from-scratch run on the updated hypergraph would return — the
//! differential oracle suite (`tests/differential_delta.rs`) asserts exact
//! equality after every random delta. Both exact rules re-read revenue
//! through [`crate::revenue::revenue`] on the maintained graph, so the
//! reported revenue is bit-identical to the full run's too.

use crate::algorithms::{xos_pricing, CipConfig, LpipConfig, PricingAlgorithm};
use crate::{revenue, AppliedOp, Hypergraph, Pricing, PricingOutcome};

/// The minimal change a repricing made to the installed [`Pricing`] — what a
/// broker applies under its write lock instead of swapping a whole pricing.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingPatch {
    /// Nothing changed (e.g. the XOS envelope is reused as-is).
    Keep,
    /// Install this pricing wholesale (the full-recompute fallback).
    Replace(Pricing),
    /// Set the uniform bundle price (UBP's one-float patch).
    SetUniformPrice(f64),
    /// Set every item weight to one value (UIP's in-place patch; replaces
    /// the pricing if the installed one is not an item pricing over
    /// `num_items` items).
    SetUniformWeight {
        /// The uniform per-item weight.
        weight: f64,
        /// Number of items the weight vector covers.
        num_items: usize,
    },
}

impl PricingPatch {
    /// Applies the patch to an installed pricing, reusing its allocation
    /// where the shapes line up.
    pub fn apply(&self, pricing: &mut Pricing) {
        match self {
            PricingPatch::Keep => {}
            PricingPatch::Replace(p) => *pricing = p.clone(),
            PricingPatch::SetUniformPrice(p) => match pricing {
                Pricing::UniformBundle { price } => *price = *p,
                other => *other = Pricing::UniformBundle { price: *p },
            },
            PricingPatch::SetUniformWeight { weight, num_items } => match pricing {
                Pricing::Item { weights } if weights.len() == *num_items => {
                    weights.iter_mut().for_each(|w| *w = *weight);
                }
                other => {
                    *other = Pricing::Item {
                        weights: vec![*weight; *num_items],
                    }
                }
            },
        }
    }
}

/// The incremental-repricing capability: stateful mirror of one algorithm's
/// optimum that absorbs [`AppliedOp`] logs instead of re-reading the whole
/// hypergraph.
///
/// Protocol: [`IncrementalRepricer::prime`] once on a full hypergraph, then
/// [`IncrementalRepricer::apply`] after every [`Hypergraph::apply_delta`]
/// with the ops that call returned. `apply` sees the hypergraph **after**
/// the delta landed.
pub trait IncrementalRepricer: Send {
    /// The underlying algorithm's registry name.
    fn algorithm(&self) -> &'static str;

    /// Whether [`IncrementalRepricer::apply`] is guaranteed to return
    /// exactly what a from-scratch run on the updated hypergraph would.
    fn exact(&self) -> bool;

    /// (Re)builds the internal state from a full hypergraph and returns the
    /// initial outcome (equivalent to the full algorithm run).
    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome;

    /// Absorbs the ops of one applied delta and returns the patched outcome
    /// plus the minimal [`PricingPatch`] a broker needs to install it.
    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch);
}

/// Orderable key for a non-negative (possibly +∞) valuation: for IEEE-754
/// floats in `[+0, +∞]` the bit patterns order exactly like the values.
/// `-0.0` (which passes the `v ≥ 0` asserts) is normalized to `+0.0` first.
fn key(v: f64) -> u64 {
    (v + 0.0).to_bits()
}

/// Merges a sorted run-length multiset with a batch of insertions and
/// removals (each carrying a per-key payload accumulated by `Acc`) into a
/// caller-owned sorted run-length multiset (cleared first) in one three-way
/// linear walk — the double-buffering callers swap `out` back, so
/// steady-state merges allocate nothing.
///
/// `base` entries are `(key, accumulated)`, `ins`/`rem` are sorted
/// `(key, payload)` pairs. Panics if a removal exceeds what the base plus
/// the batch's own insertions hold — that is a state-desync bug, never a
/// recoverable condition.
fn merge_counts<A: Acc>(
    base: &[(u64, A)],
    ins: &[(u64, A::Item)],
    rem: &[(u64, A::Item)],
    out: &mut Vec<(u64, A)>,
) {
    out.clear();
    out.reserve(base.len() + ins.len());
    let (mut b, mut i, mut r) = (0usize, 0usize, 0usize);
    loop {
        let mut k = u64::MAX;
        let mut any = false;
        if b < base.len() {
            k = k.min(base[b].0);
            any = true;
        }
        if i < ins.len() {
            k = k.min(ins[i].0);
            any = true;
        }
        if r < rem.len() {
            k = k.min(rem[r].0);
            any = true;
        }
        if !any {
            break;
        }
        let mut acc = A::default();
        if b < base.len() && base[b].0 == k {
            acc.merge(&base[b].1);
            b += 1;
        }
        while i < ins.len() && ins[i].0 == k {
            acc.add(&ins[i].1);
            i += 1;
        }
        while r < rem.len() && rem[r].0 == k {
            acc.sub(&rem[r].1);
            r += 1;
        }
        if !acc.is_zero() {
            out.push((k, acc));
        }
    }
}

/// Per-key payload accumulated by [`merge_counts`].
trait Acc: Default {
    /// The per-element payload carried by an insertion or removal.
    type Item;
    fn merge(&mut self, other: &Self);
    fn add(&mut self, item: &Self::Item);
    /// Panics when removing more than is tracked (state desync).
    fn sub(&mut self, item: &Self::Item);
    fn is_zero(&self) -> bool;
}

/// UBP payload: the multiplicity of one distinct valuation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Count(usize);

impl Acc for Count {
    type Item = ();
    fn merge(&mut self, other: &Count) {
        self.0 += other.0;
    }
    fn add(&mut self, _: &()) {
        self.0 += 1;
    }
    fn sub(&mut self, _: &()) {
        assert!(
            self.0 > 0,
            "incremental repricer out of sync: removing an untracked valuation"
        );
        self.0 -= 1;
    }
    fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

/// UBP's incremental rule (see the module docs). Exact.
#[derive(Debug, Clone, Default)]
pub struct UbpIncremental {
    /// Run-length multiset of edge valuations: distinct IEEE-bit keys
    /// ascending (= numeric ascending) with multiplicities, contiguous so
    /// the optimum scan streams through cache.
    vals: Vec<(u64, Count)>,
    /// Per-delta staging buffers (insertions, removals) and the merge's
    /// double buffer, all reused across `apply` calls.
    ins: Vec<(u64, ())>,
    rem: Vec<(u64, ())>,
    next: Vec<(u64, Count)>,
}

impl UbpIncremental {
    /// An unprimed UBP repricer.
    pub fn new() -> UbpIncremental {
        UbpIncremental::default()
    }

    /// Replays the full algorithm's price scan over the distinct valuations,
    /// descending: the candidate price `v` sells every bundle valued ≥ `v`.
    /// Tie-breaking matches [`crate::algorithms::uniform_bundle_price`]
    /// exactly (strict improvement, higher price wins revenue ties).
    fn best_price(&self) -> f64 {
        let mut best_price = 0.0;
        let mut best_rev = 0.0;
        let mut sold = 0usize;
        for &(bits, Count(count)) in self.vals.iter().rev() {
            sold += count;
            let v = f64::from_bits(bits);
            let rev = v * sold as f64;
            if rev > best_rev {
                best_rev = rev;
                best_price = v;
            }
        }
        best_price
    }

    fn outcome(&self, h: &Hypergraph) -> PricingOutcome {
        let pricing = Pricing::UniformBundle {
            price: self.best_price(),
        };
        let rev = revenue::revenue(h, &pricing);
        PricingOutcome {
            algorithm: "UBP",
            revenue: rev,
            pricing,
        }
    }
}

impl IncrementalRepricer for UbpIncremental {
    fn algorithm(&self) -> &'static str {
        "UBP"
    }

    fn exact(&self) -> bool {
        true
    }

    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome {
        let mut keys: Vec<u64> = h.edges().iter().map(|e| key(e.valuation)).collect();
        keys.sort_unstable();
        self.vals.clear();
        for k in keys {
            match self.vals.last_mut() {
                Some((last, count)) if *last == k => count.0 += 1,
                _ => self.vals.push((k, Count(1))),
            }
        }
        self.outcome(h)
    }

    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        self.ins.clear();
        self.rem.clear();
        for op in ops {
            match op {
                AppliedOp::Added { valuation, .. } => self.ins.push((key(*valuation), ())),
                AppliedOp::Removed { edge, .. } => self.rem.push((key(edge.valuation), ())),
                AppliedOp::Revalued { old, new, .. } => {
                    self.rem.push((key(*old), ()));
                    self.ins.push((key(*new), ()));
                }
            }
        }
        self.ins.sort_unstable_by_key(|e| e.0);
        self.rem.sort_unstable_by_key(|e| e.0);
        merge_counts(&self.vals, &self.ins, &self.rem, &mut self.next);
        std::mem::swap(&mut self.vals, &mut self.next);

        let out = self.outcome(h);
        let Pricing::UniformBundle { price } = out.pricing else {
            unreachable!("UBP always returns a uniform bundle pricing");
        };
        (out, PricingPatch::SetUniformPrice(price))
    }
}

/// The candidate rate of a non-empty bundle, or `None` for empty bundles
/// (which contribute no candidate — exactly as the full algorithm filters).
fn rate_key(valuation: f64, size: usize) -> Option<(u64, usize)> {
    (size > 0).then(|| (key(valuation / size as f64), size))
}

/// UIP's run-length rate multiset as a flat struct-of-arrays: three
/// parallel vectors holding, per distinct rate (IEEE-bit key, ascending =
/// numeric ascending), how many non-empty bundles share it and the sum of
/// their sizes.
///
/// The SoA layout is what makes [`RateTable::merge_batch`] fast: the
/// optimum scan touches only `keys` + `sizes` (no padding, no `counts`
/// traffic), and the batch merge moves unaffected runs with three
/// `extend_from_slice` memcpys instead of walking entries one by one.
/// Semantically this is exactly the old `Vec<(u64, RateGroup)>` — the
/// [`mod@reference`] module keeps that form and `tests/differential_merge.rs`
/// proves the two merge paths bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RateTable {
    keys: Vec<u64>,
    counts: Vec<usize>,
    sizes: Vec<usize>,
}

impl RateTable {
    /// An empty table.
    pub fn new() -> RateTable {
        RateTable::default()
    }

    /// Number of distinct rates.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no rates are tracked.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Empties the table, keeping its capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.counts.clear();
        self.sizes.clear();
    }

    /// Appends one run-length entry; `key` must exceed the current last key
    /// (entries stay sorted) and `count` must be positive.
    pub fn push(&mut self, key: u64, count: usize, sizes: usize) {
        debug_assert!(self.keys.last().is_none_or(|&last| last < key));
        debug_assert!(count > 0);
        self.keys.push(key);
        self.counts.push(count);
        self.sizes.push(sizes);
    }

    /// The entries as `(key, count, summed sizes)`, ascending by key.
    pub fn entries(&self) -> impl Iterator<Item = (u64, usize, usize)> + '_ {
        self.keys
            .iter()
            .zip(&self.counts)
            .zip(&self.sizes)
            .map(|((&k, &c), &s)| (k, c, s))
    }

    /// Merges a sorted delta batch into `out` (cleared first): `ins`/`rem`
    /// are sorted `(key, bundle size)` pairs, one per inserted/removed
    /// non-empty bundle.
    ///
    /// This is the galloping two-pointer merge (module docs): per distinct
    /// delta key the batch is coalesced into net count/size adjustments,
    /// the run of base entries below that key is located by
    /// exponential-then-binary search and bulk-copied, and the affected
    /// entry is adjusted in one step. Bit-identical to
    /// [`reference::merge_rates`], including the desync panic: a batch
    /// that removes more than the base plus its own insertions hold at any
    /// key panics — per-entry asserts and the batch-total assert agree
    /// because the old walk applied all additions before any subtraction,
    /// so its running value decreased monotonically through the removals.
    pub fn merge_batch(&self, ins: &[(u64, usize)], rem: &[(u64, usize)], out: &mut RateTable) {
        out.clear();
        out.keys.reserve(self.len() + ins.len());
        out.counts.reserve(self.len() + ins.len());
        out.sizes.reserve(self.len() + ins.len());
        let (mut i, mut r, mut b) = (0usize, 0usize, 0usize);
        while i < ins.len() || r < rem.len() {
            let k = match (ins.get(i), rem.get(r)) {
                (Some(&(ki, _)), Some(&(kr, _))) => ki.min(kr),
                (Some(&(ki, _)), None) => ki,
                (None, Some(&(kr, _))) => kr,
                (None, None) => unreachable!("loop condition holds one side"),
            };
            // Coalesce the whole batch at this key into net adjustments.
            let (mut n_ins, mut sum_ins) = (0usize, 0usize);
            while i < ins.len() && ins[i].0 == k {
                n_ins += 1;
                sum_ins += ins[i].1;
                i += 1;
            }
            let (mut n_rem, mut sum_rem) = (0usize, 0usize);
            while r < rem.len() && rem[r].0 == k {
                n_rem += 1;
                sum_rem += rem[r].1;
                r += 1;
            }
            // Gallop to the first base entry ≥ k and bulk-copy the
            // unaffected run below it.
            let lo = b + gallop_lower_bound(&self.keys[b..], k);
            out.keys.extend_from_slice(&self.keys[b..lo]);
            out.counts.extend_from_slice(&self.counts[b..lo]);
            out.sizes.extend_from_slice(&self.sizes[b..lo]);
            b = lo;
            let (mut count, mut size_sum) = (0usize, 0usize);
            if b < self.keys.len() && self.keys[b] == k {
                count = self.counts[b];
                size_sum = self.sizes[b];
                b += 1;
            }
            assert!(
                count + n_ins >= n_rem && size_sum + sum_ins >= sum_rem,
                "incremental repricer out of sync: removing an untracked rate"
            );
            let count = count + n_ins - n_rem;
            let size_sum = size_sum + sum_ins - sum_rem;
            if count > 0 {
                out.keys.push(k);
                out.counts.push(count);
                out.sizes.push(size_sum);
            }
        }
        out.keys.extend_from_slice(&self.keys[b..]);
        out.counts.extend_from_slice(&self.counts[b..]);
        out.sizes.extend_from_slice(&self.sizes[b..]);
    }
}

/// The index of the first element of `keys` that is `>= k` (all of `keys`
/// when none is), found by exponential probing from the front followed by a
/// binary search over the bracketed window.
///
/// Batch merges call this once per distinct delta key with `keys` already
/// advanced past the previous key's position, so the cost is O(log gap) in
/// the *distance to the next affected entry*, not O(log m) in the table —
/// the gallop is what keeps sparse deltas near O(|delta|).
fn gallop_lower_bound(keys: &[u64], k: u64) -> usize {
    if keys.first().is_none_or(|&x| x >= k) {
        return 0;
    }
    // keys[hi / 2] < k at every iteration exit.
    let mut hi = 1usize;
    while hi < keys.len() && keys[hi] < k {
        hi *= 2;
    }
    let lo = hi / 2 + 1;
    let hi = hi.min(keys.len());
    lo + keys[lo..hi].partition_point(|&x| x < k)
}

/// UIP's incremental rule (see the module docs). Exact.
#[derive(Debug, Clone, Default)]
pub struct UipIncremental {
    /// Run-length multiset of distinct rates `v/|e|`, struct-of-arrays.
    rates: RateTable,
    /// Per-delta staging buffers (insertions, removals) and the merge's
    /// double buffer, all reused across `apply` calls.
    ins: Vec<(u64, usize)>,
    rem: Vec<(u64, usize)>,
    next: RateTable,
}

impl UipIncremental {
    /// An unprimed UIP repricer.
    pub fn new() -> UipIncremental {
        UipIncremental::default()
    }

    /// Replays [`crate::algorithms::uniform_item_price`]'s candidate scan:
    /// descending rates with cumulative bundle sizes, strict improvement.
    /// Float op order is identical to the pre-SoA scan, so the winning
    /// weight is bit-identical.
    fn best_weight(&self) -> f64 {
        let mut best_w = 0.0;
        let mut best_rev = 0.0;
        let mut sold_items = 0usize;
        for i in (0..self.rates.len()).rev() {
            sold_items += self.rates.sizes[i];
            let rate = f64::from_bits(self.rates.keys[i]);
            let rev = rate * sold_items as f64;
            if rev > best_rev {
                best_rev = rev;
                best_w = rate;
            }
        }
        best_w
    }

    fn outcome(&self, h: &Hypergraph) -> (PricingOutcome, f64) {
        let w = self.best_weight();
        let pricing = Pricing::Item {
            weights: vec![w; h.num_items()],
        };
        let rev = revenue::revenue(h, &pricing);
        (
            PricingOutcome {
                algorithm: "UIP",
                revenue: rev,
                pricing,
            },
            w,
        )
    }
}

impl IncrementalRepricer for UipIncremental {
    fn algorithm(&self) -> &'static str {
        "UIP"
    }

    fn exact(&self) -> bool {
        true
    }

    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome {
        self.ins.clear();
        self.ins.extend(
            h.edges()
                .iter()
                .filter_map(|e| rate_key(e.valuation, e.size())),
        );
        self.ins.sort_unstable_by_key(|e| e.0);
        self.rates.clear();
        for &(k, size) in &self.ins {
            if self.rates.keys.last() == Some(&k) {
                let last = self.rates.len() - 1;
                self.rates.counts[last] += 1;
                self.rates.sizes[last] += size;
            } else {
                self.rates.push(k, 1, size);
            }
        }
        self.ins.clear();
        self.outcome(h).0
    }

    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        self.ins.clear();
        self.rem.clear();
        for op in ops {
            match op {
                AppliedOp::Added {
                    valuation, size, ..
                } => self.ins.extend(rate_key(*valuation, *size)),
                AppliedOp::Removed { edge, .. } => {
                    self.rem.extend(rate_key(edge.valuation, edge.size()))
                }
                AppliedOp::Revalued { size, old, new, .. } => {
                    self.rem.extend(rate_key(*old, *size));
                    self.ins.extend(rate_key(*new, *size));
                }
            }
        }
        self.ins.sort_unstable_by_key(|e| e.0);
        self.rem.sort_unstable_by_key(|e| e.0);
        self.rates.merge_batch(&self.ins, &self.rem, &mut self.next);
        std::mem::swap(&mut self.rates, &mut self.next);

        let (out, w) = self.outcome(h);
        let patch = PricingPatch::SetUniformWeight {
            weight: w,
            num_items: h.num_items(),
        };
        (out, patch)
    }
}

/// XOS's incremental rule: reuse the fitted LPIP/CIP envelope, re-evaluate
/// its revenue on the updated demand, and **re-fit** (re-run the component
/// LPs) once the demand has churned past the [`XosIncremental::with_refit_after`] fraction —
/// the periodic full recompute that bounds envelope drift. **Not exact** —
/// between refits a full recompute would generally return a different
/// envelope.
#[derive(Debug, Clone)]
pub struct XosIncremental {
    lpip: LpipConfig,
    cip: CipConfig,
    components: Vec<Vec<f64>>,
    /// Re-fit once the ops absorbed since the last fit exceed this fraction
    /// of the current edge count (0.5 by default; `f64::INFINITY` disables
    /// refitting entirely).
    refit_after: f64,
    ops_since_fit: usize,
}

impl XosIncremental {
    /// Ops-per-edge churn fraction that triggers a refit by default.
    pub const DEFAULT_REFIT_AFTER: f64 = 0.5;

    /// An unprimed XOS repricer with the given component configurations and
    /// the default refit threshold.
    pub fn new(lpip: LpipConfig, cip: CipConfig) -> XosIncremental {
        XosIncremental {
            lpip,
            cip,
            // alloc: one-time construction; refits reuse the fitted buffers.
            components: Vec::new(),
            refit_after: Self::DEFAULT_REFIT_AFTER,
            ops_since_fit: 0,
        }
    }

    /// Overrides the churn fraction that triggers an envelope refit
    /// (`f64::INFINITY` reuses the primed envelope forever).
    pub fn with_refit_after(mut self, fraction: f64) -> XosIncremental {
        assert!(fraction >= 0.0, "refit fraction must be non-negative");
        self.refit_after = fraction;
        self
    }
}

impl IncrementalRepricer for XosIncremental {
    fn algorithm(&self) -> &'static str {
        "XOS"
    }

    fn exact(&self) -> bool {
        false
    }

    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome {
        let out = xos_pricing(h, &self.lpip, &self.cip);
        let Pricing::Xos { components } = &out.pricing else {
            unreachable!("XOS always returns an XOS pricing");
        };
        self.components = components.clone();
        self.ops_since_fit = 0;
        out
    }

    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        self.ops_since_fit += ops.len();
        if self.ops_since_fit as f64 >= self.refit_after * h.num_edges().max(1) as f64 {
            let out = self.prime(h);
            let patch = PricingPatch::Replace(out.pricing.clone());
            return (out, patch);
        }
        let pricing = Pricing::Xos {
            components: self.components.clone(),
        };
        let rev = revenue::revenue(h, &pricing);
        (
            PricingOutcome {
                algorithm: "XOS",
                revenue: rev,
                pricing,
            },
            PricingPatch::Keep,
        )
    }
}

/// Drives one registry algorithm through a stream of repricings, using its
/// incremental capability when it has one and falling back to full
/// recomputes when it does not (or before the first priming).
pub struct Repricer {
    algo: Box<dyn PricingAlgorithm>,
    incremental: Option<Box<dyn IncrementalRepricer>>,
    primed: bool,
}

impl Repricer {
    /// Wraps a registry algorithm, probing its incremental capability.
    pub fn new(algo: Box<dyn PricingAlgorithm>) -> Repricer {
        let incremental = algo.reprice_incremental();
        Repricer {
            algo,
            incremental,
            primed: false,
        }
    }

    /// The wrapped algorithm's registry name.
    pub fn algorithm(&self) -> &str {
        self.algo.name()
    }

    /// Whether repricings after the first will take the incremental path.
    pub fn is_incremental(&self) -> bool {
        self.incremental.is_some()
    }

    /// Runs the full algorithm, bypassing any incremental state (the
    /// full-rebuild baseline; does not prime).
    pub fn run_full(&self, h: &Hypergraph) -> PricingOutcome {
        self.algo.run(h)
    }

    /// Reprices on the updated hypergraph: the first call primes (full run),
    /// later calls absorb `ops` incrementally; algorithms without the
    /// capability run in full every time. Returns the outcome and the
    /// minimal patch to install it.
    pub fn reprice(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        match &mut self.incremental {
            Some(inc) if self.primed => inc.apply(h, ops),
            Some(inc) => {
                self.primed = true;
                let out = inc.prime(h);
                let patch = PricingPatch::Replace(out.pricing.clone());
                (out, patch)
            }
            None => {
                let out = self.algo.run(h);
                let patch = PricingPatch::Replace(out.pricing.clone());
                (out, patch)
            }
        }
    }
}

/// Scalar reference implementation of the UIP rate-multiset merge — the
/// pre-SoA entry-at-a-time walk, kept as the differential oracle for
/// [`RateTable::merge_batch`] (`tests/differential_merge.rs` and the bench
/// harness both pit the two against each other). These allocate a fresh
/// result per call on purpose; do not "fix" them.
pub mod reference {
    use super::RateTable;

    /// One run-length entry: how many non-empty bundles share a rate, and
    /// the sum of their sizes.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct RateEntry {
        /// Number of bundles at this rate.
        pub count: usize,
        /// Summed bundle sizes at this rate.
        pub sizes: usize,
    }

    /// The old three-way walk: applies `ins` then `rem` per key, one entry
    /// at a time, with the per-step underflow asserts the batch form of
    /// [`RateTable::merge_batch`] collapses into one check per key.
    pub fn merge_rates(
        base: &[(u64, RateEntry)],
        ins: &[(u64, usize)],
        rem: &[(u64, usize)],
    ) -> Vec<(u64, RateEntry)> {
        fn apply_at(
            out: &mut Vec<(u64, RateEntry)>,
            ins: &[(u64, usize)],
            rem: &[(u64, usize)],
            i: &mut usize,
            r: &mut usize,
            k: u64,
            mut e: RateEntry,
        ) {
            while *i < ins.len() && ins[*i].0 == k {
                e.count += 1;
                e.sizes += ins[*i].1;
                *i += 1;
            }
            while *r < rem.len() && rem[*r].0 == k {
                assert!(
                    e.count > 0 && e.sizes >= rem[*r].1,
                    "incremental repricer out of sync: removing an untracked rate"
                );
                e.count -= 1;
                e.sizes -= rem[*r].1;
                *r += 1;
            }
            if e.count > 0 {
                out.push((k, e));
            }
        }
        fn next_delta_key(
            ins: &[(u64, usize)],
            rem: &[(u64, usize)],
            i: usize,
            r: usize,
        ) -> Option<u64> {
            match (ins.get(i), rem.get(r)) {
                (Some(&(ki, _)), Some(&(kr, _))) => Some(ki.min(kr)),
                (Some(&(ki, _)), None) => Some(ki),
                (None, Some(&(kr, _))) => Some(kr),
                (None, None) => None,
            }
        }
        // alloc: oracle path — a fresh result per call is the point.
        let mut out: Vec<(u64, RateEntry)> = Vec::with_capacity(base.len() + ins.len());
        let (mut i, mut r) = (0usize, 0usize);
        for &(k, e) in base {
            // Delta keys strictly below this base entry form entries of
            // their own first.
            while let Some(next) = next_delta_key(ins, rem, i, r) {
                if next >= k {
                    break;
                }
                apply_at(
                    &mut out,
                    ins,
                    rem,
                    &mut i,
                    &mut r,
                    next,
                    RateEntry::default(),
                );
            }
            apply_at(&mut out, ins, rem, &mut i, &mut r, k, e);
        }
        while let Some(next) = next_delta_key(ins, rem, i, r) {
            apply_at(
                &mut out,
                ins,
                rem,
                &mut i,
                &mut r,
                next,
                RateEntry::default(),
            );
        }
        out
    }

    /// A [`RateTable`] holding exactly `entries` (sorted by key).
    pub fn table_from_entries(entries: &[(u64, RateEntry)]) -> RateTable {
        let mut t = RateTable::new();
        for &(k, e) in entries {
            t.push(k, e.count, e.sizes);
        }
        t
    }

    /// A table's entries in the reference AoS form.
    pub fn entries_from_table(t: &RateTable) -> Vec<(u64, RateEntry)> {
        t.entries()
            .map(|(k, count, sizes)| (k, RateEntry { count, sizes }))
            // alloc: oracle path — a fresh result per call is the point.
            .collect::<Vec<_>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{self, uniform_bundle_price, uniform_item_price};
    use crate::HypergraphDelta;

    fn graph() -> Hypergraph {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0], 8.0);
        h.add_edge(vec![1], 2.0);
        h.add_edge(vec![0, 1], 9.0);
        h.add_edge(vec![1, 2], 4.0);
        h
    }

    #[test]
    fn ubp_incremental_tracks_the_full_algorithm_exactly() {
        let mut h = graph();
        let mut inc = UbpIncremental::new();
        let primed = inc.prime(&h);
        let full = uniform_bundle_price(&h);
        assert_eq!(primed.pricing, full.pricing);
        assert_eq!(primed.revenue.to_bits(), full.revenue.to_bits());

        let mut delta = HypergraphDelta::new();
        delta
            .add_edge([2usize, 3].into_iter().collect(), 11.0)
            .remove_edge(0)
            .revalue_edge(1, 1.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        let full = uniform_bundle_price(&h);
        assert_eq!(out.pricing, full.pricing);
        assert_eq!(out.revenue.to_bits(), full.revenue.to_bits());
        let Pricing::UniformBundle { price } = full.pricing else {
            unreachable!()
        };
        assert_eq!(patch, PricingPatch::SetUniformPrice(price));
    }

    #[test]
    fn uip_incremental_tracks_the_full_algorithm_exactly() {
        let mut h = graph();
        let mut inc = UipIncremental::new();
        inc.prime(&h);

        let mut delta = HypergraphDelta::new();
        delta
            .add_edge([0usize, 2, 3].into_iter().collect(), 12.0)
            .revalue_edge(2, 3.0)
            .remove_edge(1);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        let full = uniform_item_price(&h);
        assert_eq!(out.pricing, full.pricing);
        assert_eq!(out.revenue.to_bits(), full.revenue.to_bits());
        assert!(matches!(patch, PricingPatch::SetUniformWeight { .. }));
    }

    #[test]
    fn galloping_batch_merge_matches_the_reference_walk() {
        // A base multiset with clustered and isolated keys, plus a delta
        // batch that hits existing keys, creates new ones, annihilates one
        // entirely, and repeats keys within one batch.
        let base = vec![
            (10u64, reference::RateEntry { count: 2, sizes: 7 }),
            (20, reference::RateEntry { count: 1, sizes: 3 }),
            (21, reference::RateEntry { count: 4, sizes: 9 }),
            (50, reference::RateEntry { count: 1, sizes: 2 }),
            (
                90,
                reference::RateEntry {
                    count: 3,
                    sizes: 12,
                },
            ),
        ];
        let ins = vec![(5u64, 4usize), (20, 1), (20, 2), (60, 5), (95, 1)];
        let rem = vec![(10u64, 3usize), (20, 3), (50, 2), (90, 4)];
        let expected = reference::merge_rates(&base, &ins, &rem);

        let table = reference::table_from_entries(&base);
        let mut out = RateTable::new();
        table.merge_batch(&ins, &rem, &mut out);
        assert_eq!(reference::entries_from_table(&out), expected);

        // An empty delta is an identity copy.
        table.merge_batch(&[], &[], &mut out);
        assert_eq!(reference::entries_from_table(&out), base);

        // A delta against an empty base builds the table from scratch.
        RateTable::new().merge_batch(&ins, &[], &mut out);
        assert_eq!(
            reference::entries_from_table(&out),
            reference::merge_rates(&[], &ins, &[])
        );
    }

    #[test]
    #[should_panic(expected = "removing an untracked rate")]
    fn batch_merge_panics_on_untracked_removal() {
        let table =
            reference::table_from_entries(&[(10u64, reference::RateEntry { count: 1, sizes: 2 })]);
        let mut out = RateTable::new();
        // Two removals at a key holding one bundle: state desync.
        table.merge_batch(&[], &[(10, 2), (10, 2)], &mut out);
    }

    #[test]
    fn empty_bundles_never_become_rate_candidates() {
        let mut h = Hypergraph::new(2);
        h.add_edge(Vec::<usize>::new(), 5.0);
        h.add_edge(vec![0], 3.0);
        let mut inc = UipIncremental::new();
        inc.prime(&h);
        let mut delta = HypergraphDelta::new();
        delta.remove_edge(0).add_edge(qp_core::ItemSet::new(), 7.0);
        let ops = h.apply_delta(delta);
        let (out, _) = inc.apply(&h, &ops);
        assert_eq!(out.pricing, uniform_item_price(&h).pricing);
    }

    #[test]
    fn xos_incremental_reuses_the_envelope_and_reports_true_revenue() {
        let mut h = graph();
        let mut inc = XosIncremental::new(LpipConfig::default(), CipConfig::default())
            .with_refit_after(f64::INFINITY); // pin the envelope for this test
        let primed = inc.prime(&h);

        let mut delta = HypergraphDelta::new();
        delta.add_edge([3usize].into_iter().collect(), 6.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        // Envelope unchanged, revenue re-read against the new demand.
        assert_eq!(out.pricing, primed.pricing);
        assert_eq!(
            out.revenue.to_bits(),
            revenue::revenue(&h, &out.pricing).to_bits()
        );
        assert_eq!(patch, PricingPatch::Keep);
        assert!(!inc.exact());
    }

    #[test]
    fn xos_incremental_refits_the_envelope_once_churn_accumulates() {
        // Demand shifts wholesale: with the default threshold the envelope
        // must be re-fitted (a Replace patch) instead of going stale.
        let mut h = graph();
        let mut inc = XosIncremental::new(LpipConfig::default(), CipConfig::default());
        let primed = inc.prime(&h);

        let mut delta = HypergraphDelta::new();
        for _ in 0..h.num_edges() {
            delta.remove_edge(0);
        }
        delta
            .add_edge([0usize].into_iter().collect(), 20.0)
            .add_edge([1usize].into_iter().collect(), 25.0)
            .add_edge([2usize].into_iter().collect(), 30.0)
            .add_edge([3usize].into_iter().collect(), 50.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        assert!(
            matches!(patch, PricingPatch::Replace(_)),
            "churn past the threshold must refit, got {patch:?}"
        );
        // The refit equals a fresh full XOS run on the new demand…
        let full = xos_pricing(&h, &LpipConfig::default(), &CipConfig::default());
        assert_eq!(out.pricing, full.pricing);
        assert_ne!(out.pricing, primed.pricing, "the old envelope was stale");
        // …and the churn counter reset: a tiny follow-up delta reuses it.
        let mut delta = HypergraphDelta::new();
        delta.revalue_edge(0, 31.0);
        let ops = h.apply_delta(delta);
        let (_, patch) = inc.apply(&h, &ops);
        assert_eq!(patch, PricingPatch::Keep);
    }

    #[test]
    fn repricer_falls_back_to_full_runs_without_the_capability() {
        let mut h = graph();
        let mut layering = Repricer::new(algorithms::by_name("Layering").unwrap());
        assert!(!layering.is_incremental());
        let (out, patch) = layering.reprice(&h, &[]);
        assert!(matches!(patch, PricingPatch::Replace(_)));

        let mut delta = HypergraphDelta::new();
        delta.remove_edge(2);
        let ops = h.apply_delta(delta);
        let (out2, patch2) = layering.reprice(&h, &ops);
        assert!(matches!(patch2, PricingPatch::Replace(_)));
        // Full reruns both times: outcomes match direct runs.
        assert!(out.revenue >= 0.0 && out2.revenue >= 0.0);
        assert_eq!(
            out2.revenue.to_bits(),
            layering.run_full(&h).revenue.to_bits()
        );
    }

    #[test]
    fn repricer_primes_then_patches_for_incremental_algorithms() {
        let mut h = graph();
        let mut ubp = Repricer::new(algorithms::by_name("UBP").unwrap());
        assert!(ubp.is_incremental());
        assert_eq!(ubp.algorithm(), "UBP");
        let (_, patch) = ubp.reprice(&h, &[]);
        assert!(
            matches!(patch, PricingPatch::Replace(_)),
            "first call primes"
        );

        let mut delta = HypergraphDelta::new();
        delta.add_edge([0usize].into_iter().collect(), 20.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = ubp.reprice(&h, &ops);
        assert!(matches!(patch, PricingPatch::SetUniformPrice(_)));
        assert_eq!(out.pricing, uniform_bundle_price(&h).pricing);
    }

    #[test]
    fn patches_mutate_pricings_in_place_or_replace_on_shape_mismatch() {
        let mut p = Pricing::UniformBundle { price: 3.0 };
        PricingPatch::SetUniformPrice(5.0).apply(&mut p);
        assert_eq!(p, Pricing::UniformBundle { price: 5.0 });

        PricingPatch::SetUniformWeight {
            weight: 2.0,
            num_items: 3,
        }
        .apply(&mut p);
        assert_eq!(
            p,
            Pricing::Item {
                weights: vec![2.0; 3]
            }
        );
        PricingPatch::SetUniformWeight {
            weight: 4.0,
            num_items: 3,
        }
        .apply(&mut p);
        assert_eq!(
            p,
            Pricing::Item {
                weights: vec![4.0; 3]
            }
        );

        let before = p.clone();
        PricingPatch::Keep.apply(&mut p);
        assert_eq!(p, before);

        PricingPatch::Replace(Pricing::UniformBundle { price: 1.0 }).apply(&mut p);
        assert_eq!(p, Pricing::UniformBundle { price: 1.0 });
    }

    #[test]
    fn negative_zero_valuations_normalize_into_the_positive_key() {
        assert_eq!(key(-0.0), key(0.0));
        assert!(key(1.0) > key(0.5));
        assert!(key(f64::INFINITY) > key(1e300));
    }
}
