//! Incremental repricing: patch a pricing in place as demand changes.
//!
//! The paper's algorithms assume a static demand hypergraph; a live market
//! learns demand from buyer interactions (the online setting of *Pricing
//! Queries (Approximately) Optimally*), so repricing is a hot path. This
//! module is the `RepriceIncremental` capability: algorithms whose optimum
//! has a cheap update rule expose an [`IncrementalRepricer`] through
//! [`super::PricingAlgorithm::reprice_incremental`], and the [`Repricer`]
//! driver transparently falls back to a full recompute for the rest.
//!
//! Cheap update rules implemented here:
//!
//! * **UBP** ([`UbpIncremental`], exact) — the optimal uniform bundle price
//!   depends only on the multiset of valuations. A sorted run-length
//!   multiset (contiguous `Vec`, keyed by the valuation's IEEE-754 bits,
//!   which order identically to the non-negative floats themselves)
//!   absorbs each delta as one O(m + |delta| log |delta|) three-way merge;
//!   the optimum is re-read with one cache-friendly descending scan over
//!   the *distinct* values — no hypergraph rebuild, no O(m log m) re-sort.
//! * **UIP** ([`UipIncremental`], exact) — same shape over the candidate
//!   rates `v_e / |e|`, aggregating bundle sizes per distinct rate.
//! * **XOS** ([`XosIncremental`], *not* exact) — re-fitting the LPIP/CIP
//!   components means re-running LPs, so the incremental rule keeps the
//!   fitted envelope and re-evaluates its revenue on the updated demand,
//!   re-fitting the components (a full LP recompute) once the absorbed
//!   churn exceeds [`XosIncremental::with_refit_after`]'s fraction of the edge count.
//!
//! "Exact" means the incrementally-maintained pricing is **identical** to
//! what a from-scratch run on the updated hypergraph would return — the
//! differential oracle suite (`tests/differential_delta.rs`) asserts exact
//! equality after every random delta. Both exact rules re-read revenue
//! through [`crate::revenue::revenue`] on the maintained graph, so the
//! reported revenue is bit-identical to the full run's too.

use crate::algorithms::{xos_pricing, CipConfig, LpipConfig, PricingAlgorithm};
use crate::{revenue, AppliedOp, Hypergraph, Pricing, PricingOutcome};

/// The minimal change a repricing made to the installed [`Pricing`] — what a
/// broker applies under its write lock instead of swapping a whole pricing.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingPatch {
    /// Nothing changed (e.g. the XOS envelope is reused as-is).
    Keep,
    /// Install this pricing wholesale (the full-recompute fallback).
    Replace(Pricing),
    /// Set the uniform bundle price (UBP's one-float patch).
    SetUniformPrice(f64),
    /// Set every item weight to one value (UIP's in-place patch; replaces
    /// the pricing if the installed one is not an item pricing over
    /// `num_items` items).
    SetUniformWeight {
        /// The uniform per-item weight.
        weight: f64,
        /// Number of items the weight vector covers.
        num_items: usize,
    },
}

impl PricingPatch {
    /// Applies the patch to an installed pricing, reusing its allocation
    /// where the shapes line up.
    pub fn apply(&self, pricing: &mut Pricing) {
        match self {
            PricingPatch::Keep => {}
            PricingPatch::Replace(p) => *pricing = p.clone(),
            PricingPatch::SetUniformPrice(p) => match pricing {
                Pricing::UniformBundle { price } => *price = *p,
                other => *other = Pricing::UniformBundle { price: *p },
            },
            PricingPatch::SetUniformWeight { weight, num_items } => match pricing {
                Pricing::Item { weights } if weights.len() == *num_items => {
                    weights.iter_mut().for_each(|w| *w = *weight);
                }
                other => {
                    *other = Pricing::Item {
                        weights: vec![*weight; *num_items],
                    }
                }
            },
        }
    }
}

/// The incremental-repricing capability: stateful mirror of one algorithm's
/// optimum that absorbs [`AppliedOp`] logs instead of re-reading the whole
/// hypergraph.
///
/// Protocol: [`IncrementalRepricer::prime`] once on a full hypergraph, then
/// [`IncrementalRepricer::apply`] after every [`Hypergraph::apply_delta`]
/// with the ops that call returned. `apply` sees the hypergraph **after**
/// the delta landed.
pub trait IncrementalRepricer: Send {
    /// The underlying algorithm's registry name.
    fn algorithm(&self) -> &'static str;

    /// Whether [`IncrementalRepricer::apply`] is guaranteed to return
    /// exactly what a from-scratch run on the updated hypergraph would.
    fn exact(&self) -> bool;

    /// (Re)builds the internal state from a full hypergraph and returns the
    /// initial outcome (equivalent to the full algorithm run).
    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome;

    /// Absorbs the ops of one applied delta and returns the patched outcome
    /// plus the minimal [`PricingPatch`] a broker needs to install it.
    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch);
}

/// Orderable key for a non-negative (possibly +∞) valuation: for IEEE-754
/// floats in `[+0, +∞]` the bit patterns order exactly like the values.
/// `-0.0` (which passes the `v ≥ 0` asserts) is normalized to `+0.0` first.
fn key(v: f64) -> u64 {
    (v + 0.0).to_bits()
}

/// Merges a sorted run-length multiset with a batch of insertions and
/// removals (each carrying a per-key payload accumulated by `Acc`) into a
/// fresh sorted run-length multiset in one three-way linear walk.
///
/// `base` entries are `(key, accumulated)`, `ins`/`rem` are sorted
/// `(key, payload)` pairs. Panics if a removal exceeds what the base plus
/// the batch's own insertions hold — that is a state-desync bug, never a
/// recoverable condition.
fn merge_counts<A: Acc>(
    base: &[(u64, A)],
    ins: &[(u64, A::Item)],
    rem: &[(u64, A::Item)],
) -> Vec<(u64, A)> {
    let mut out = Vec::with_capacity(base.len() + ins.len());
    let (mut b, mut i, mut r) = (0usize, 0usize, 0usize);
    loop {
        let mut k = u64::MAX;
        let mut any = false;
        if b < base.len() {
            k = k.min(base[b].0);
            any = true;
        }
        if i < ins.len() {
            k = k.min(ins[i].0);
            any = true;
        }
        if r < rem.len() {
            k = k.min(rem[r].0);
            any = true;
        }
        if !any {
            break;
        }
        let mut acc = A::default();
        if b < base.len() && base[b].0 == k {
            acc.merge(&base[b].1);
            b += 1;
        }
        while i < ins.len() && ins[i].0 == k {
            acc.add(&ins[i].1);
            i += 1;
        }
        while r < rem.len() && rem[r].0 == k {
            acc.sub(&rem[r].1);
            r += 1;
        }
        if !acc.is_zero() {
            out.push((k, acc));
        }
    }
    out
}

/// Per-key payload accumulated by [`merge_counts`].
trait Acc: Default {
    /// The per-element payload carried by an insertion or removal.
    type Item;
    fn merge(&mut self, other: &Self);
    fn add(&mut self, item: &Self::Item);
    /// Panics when removing more than is tracked (state desync).
    fn sub(&mut self, item: &Self::Item);
    fn is_zero(&self) -> bool;
}

/// UBP payload: the multiplicity of one distinct valuation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Count(usize);

impl Acc for Count {
    type Item = ();
    fn merge(&mut self, other: &Count) {
        self.0 += other.0;
    }
    fn add(&mut self, _: &()) {
        self.0 += 1;
    }
    fn sub(&mut self, _: &()) {
        assert!(
            self.0 > 0,
            "incremental repricer out of sync: removing an untracked valuation"
        );
        self.0 -= 1;
    }
    fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

/// UBP's incremental rule (see the module docs). Exact.
#[derive(Debug, Clone, Default)]
pub struct UbpIncremental {
    /// Run-length multiset of edge valuations: distinct IEEE-bit keys
    /// ascending (= numeric ascending) with multiplicities, contiguous so
    /// the optimum scan streams through cache.
    vals: Vec<(u64, Count)>,
}

impl UbpIncremental {
    /// An unprimed UBP repricer.
    pub fn new() -> UbpIncremental {
        UbpIncremental::default()
    }

    /// Replays the full algorithm's price scan over the distinct valuations,
    /// descending: the candidate price `v` sells every bundle valued ≥ `v`.
    /// Tie-breaking matches [`crate::algorithms::uniform_bundle_price`]
    /// exactly (strict improvement, higher price wins revenue ties).
    fn best_price(&self) -> f64 {
        let mut best_price = 0.0;
        let mut best_rev = 0.0;
        let mut sold = 0usize;
        for &(bits, Count(count)) in self.vals.iter().rev() {
            sold += count;
            let v = f64::from_bits(bits);
            let rev = v * sold as f64;
            if rev > best_rev {
                best_rev = rev;
                best_price = v;
            }
        }
        best_price
    }

    fn outcome(&self, h: &Hypergraph) -> PricingOutcome {
        let pricing = Pricing::UniformBundle {
            price: self.best_price(),
        };
        let rev = revenue::revenue(h, &pricing);
        PricingOutcome {
            algorithm: "UBP",
            revenue: rev,
            pricing,
        }
    }
}

impl IncrementalRepricer for UbpIncremental {
    fn algorithm(&self) -> &'static str {
        "UBP"
    }

    fn exact(&self) -> bool {
        true
    }

    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome {
        let mut keys: Vec<u64> = h.edges().iter().map(|e| key(e.valuation)).collect();
        keys.sort_unstable();
        self.vals.clear();
        for k in keys {
            match self.vals.last_mut() {
                Some((last, count)) if *last == k => count.0 += 1,
                _ => self.vals.push((k, Count(1))),
            }
        }
        self.outcome(h)
    }

    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        let mut ins: Vec<(u64, ())> = Vec::new();
        let mut rem: Vec<(u64, ())> = Vec::new();
        for op in ops {
            match op {
                AppliedOp::Added { valuation, .. } => ins.push((key(*valuation), ())),
                AppliedOp::Removed { edge, .. } => rem.push((key(edge.valuation), ())),
                AppliedOp::Revalued { old, new, .. } => {
                    rem.push((key(*old), ()));
                    ins.push((key(*new), ()));
                }
            }
        }
        ins.sort_unstable_by_key(|e| e.0);
        rem.sort_unstable_by_key(|e| e.0);
        self.vals = merge_counts(&self.vals, &ins, &rem);

        let out = self.outcome(h);
        let Pricing::UniformBundle { price } = out.pricing else {
            unreachable!("UBP always returns a uniform bundle pricing");
        };
        (out, PricingPatch::SetUniformPrice(price))
    }
}

/// UIP payload: how many non-empty bundles share one distinct rate, and
/// the sum of their sizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RateGroup {
    count: usize,
    sizes: usize,
}

impl Acc for RateGroup {
    type Item = usize; // the bundle size
    fn merge(&mut self, other: &RateGroup) {
        self.count += other.count;
        self.sizes += other.sizes;
    }
    fn add(&mut self, size: &usize) {
        self.count += 1;
        self.sizes += size;
    }
    fn sub(&mut self, size: &usize) {
        assert!(
            self.count > 0 && self.sizes >= *size,
            "incremental repricer out of sync: removing an untracked rate"
        );
        self.count -= 1;
        self.sizes -= size;
    }
    fn is_zero(&self) -> bool {
        self.count == 0
    }
}

/// The candidate rate of a non-empty bundle, or `None` for empty bundles
/// (which contribute no candidate — exactly as the full algorithm filters).
fn rate_key(valuation: f64, size: usize) -> Option<(u64, usize)> {
    (size > 0).then(|| (key(valuation / size as f64), size))
}

/// UIP's incremental rule (see the module docs). Exact.
#[derive(Debug, Clone, Default)]
pub struct UipIncremental {
    /// Run-length multiset of distinct rates `v/|e|` (IEEE-bit keys,
    /// ascending) with counts and summed bundle sizes, contiguous.
    rates: Vec<(u64, RateGroup)>,
}

impl UipIncremental {
    /// An unprimed UIP repricer.
    pub fn new() -> UipIncremental {
        UipIncremental::default()
    }

    /// Replays [`crate::algorithms::uniform_item_price`]'s candidate scan:
    /// descending rates with cumulative bundle sizes, strict improvement.
    fn best_weight(&self) -> f64 {
        let mut best_w = 0.0;
        let mut best_rev = 0.0;
        let mut sold_items = 0usize;
        for &(bits, group) in self.rates.iter().rev() {
            sold_items += group.sizes;
            let rate = f64::from_bits(bits);
            let rev = rate * sold_items as f64;
            if rev > best_rev {
                best_rev = rev;
                best_w = rate;
            }
        }
        best_w
    }

    fn outcome(&self, h: &Hypergraph) -> (PricingOutcome, f64) {
        let w = self.best_weight();
        let pricing = Pricing::Item {
            weights: vec![w; h.num_items()],
        };
        let rev = revenue::revenue(h, &pricing);
        (
            PricingOutcome {
                algorithm: "UIP",
                revenue: rev,
                pricing,
            },
            w,
        )
    }
}

impl IncrementalRepricer for UipIncremental {
    fn algorithm(&self) -> &'static str {
        "UIP"
    }

    fn exact(&self) -> bool {
        true
    }

    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome {
        let mut keys: Vec<(u64, usize)> = h
            .edges()
            .iter()
            .filter_map(|e| rate_key(e.valuation, e.size()))
            .collect();
        keys.sort_unstable_by_key(|e| e.0);
        self.rates.clear();
        for (k, size) in keys {
            match self.rates.last_mut() {
                Some((last, group)) if *last == k => {
                    group.count += 1;
                    group.sizes += size;
                }
                _ => self.rates.push((
                    k,
                    RateGroup {
                        count: 1,
                        sizes: size,
                    },
                )),
            }
        }
        self.outcome(h).0
    }

    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        let mut ins: Vec<(u64, usize)> = Vec::new();
        let mut rem: Vec<(u64, usize)> = Vec::new();
        for op in ops {
            match op {
                AppliedOp::Added {
                    valuation, size, ..
                } => ins.extend(rate_key(*valuation, *size)),
                AppliedOp::Removed { edge, .. } => {
                    rem.extend(rate_key(edge.valuation, edge.size()))
                }
                AppliedOp::Revalued { size, old, new, .. } => {
                    rem.extend(rate_key(*old, *size));
                    ins.extend(rate_key(*new, *size));
                }
            }
        }
        ins.sort_unstable_by_key(|e| e.0);
        rem.sort_unstable_by_key(|e| e.0);
        self.rates = merge_counts(&self.rates, &ins, &rem);

        let (out, w) = self.outcome(h);
        let patch = PricingPatch::SetUniformWeight {
            weight: w,
            num_items: h.num_items(),
        };
        (out, patch)
    }
}

/// XOS's incremental rule: reuse the fitted LPIP/CIP envelope, re-evaluate
/// its revenue on the updated demand, and **re-fit** (re-run the component
/// LPs) once the demand has churned past the [`XosIncremental::with_refit_after`] fraction —
/// the periodic full recompute that bounds envelope drift. **Not exact** —
/// between refits a full recompute would generally return a different
/// envelope.
#[derive(Debug, Clone)]
pub struct XosIncremental {
    lpip: LpipConfig,
    cip: CipConfig,
    components: Vec<Vec<f64>>,
    /// Re-fit once the ops absorbed since the last fit exceed this fraction
    /// of the current edge count (0.5 by default; `f64::INFINITY` disables
    /// refitting entirely).
    refit_after: f64,
    ops_since_fit: usize,
}

impl XosIncremental {
    /// Ops-per-edge churn fraction that triggers a refit by default.
    pub const DEFAULT_REFIT_AFTER: f64 = 0.5;

    /// An unprimed XOS repricer with the given component configurations and
    /// the default refit threshold.
    pub fn new(lpip: LpipConfig, cip: CipConfig) -> XosIncremental {
        XosIncremental {
            lpip,
            cip,
            components: Vec::new(),
            refit_after: Self::DEFAULT_REFIT_AFTER,
            ops_since_fit: 0,
        }
    }

    /// Overrides the churn fraction that triggers an envelope refit
    /// (`f64::INFINITY` reuses the primed envelope forever).
    pub fn with_refit_after(mut self, fraction: f64) -> XosIncremental {
        assert!(fraction >= 0.0, "refit fraction must be non-negative");
        self.refit_after = fraction;
        self
    }
}

impl IncrementalRepricer for XosIncremental {
    fn algorithm(&self) -> &'static str {
        "XOS"
    }

    fn exact(&self) -> bool {
        false
    }

    fn prime(&mut self, h: &Hypergraph) -> PricingOutcome {
        let out = xos_pricing(h, &self.lpip, &self.cip);
        let Pricing::Xos { components } = &out.pricing else {
            unreachable!("XOS always returns an XOS pricing");
        };
        self.components = components.clone();
        self.ops_since_fit = 0;
        out
    }

    fn apply(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        self.ops_since_fit += ops.len();
        if self.ops_since_fit as f64 >= self.refit_after * h.num_edges().max(1) as f64 {
            let out = self.prime(h);
            let patch = PricingPatch::Replace(out.pricing.clone());
            return (out, patch);
        }
        let pricing = Pricing::Xos {
            components: self.components.clone(),
        };
        let rev = revenue::revenue(h, &pricing);
        (
            PricingOutcome {
                algorithm: "XOS",
                revenue: rev,
                pricing,
            },
            PricingPatch::Keep,
        )
    }
}

/// Drives one registry algorithm through a stream of repricings, using its
/// incremental capability when it has one and falling back to full
/// recomputes when it does not (or before the first priming).
pub struct Repricer {
    algo: Box<dyn PricingAlgorithm>,
    incremental: Option<Box<dyn IncrementalRepricer>>,
    primed: bool,
}

impl Repricer {
    /// Wraps a registry algorithm, probing its incremental capability.
    pub fn new(algo: Box<dyn PricingAlgorithm>) -> Repricer {
        let incremental = algo.reprice_incremental();
        Repricer {
            algo,
            incremental,
            primed: false,
        }
    }

    /// The wrapped algorithm's registry name.
    pub fn algorithm(&self) -> &str {
        self.algo.name()
    }

    /// Whether repricings after the first will take the incremental path.
    pub fn is_incremental(&self) -> bool {
        self.incremental.is_some()
    }

    /// Runs the full algorithm, bypassing any incremental state (the
    /// full-rebuild baseline; does not prime).
    pub fn run_full(&self, h: &Hypergraph) -> PricingOutcome {
        self.algo.run(h)
    }

    /// Reprices on the updated hypergraph: the first call primes (full run),
    /// later calls absorb `ops` incrementally; algorithms without the
    /// capability run in full every time. Returns the outcome and the
    /// minimal patch to install it.
    pub fn reprice(&mut self, h: &Hypergraph, ops: &[AppliedOp]) -> (PricingOutcome, PricingPatch) {
        match &mut self.incremental {
            Some(inc) if self.primed => inc.apply(h, ops),
            Some(inc) => {
                self.primed = true;
                let out = inc.prime(h);
                let patch = PricingPatch::Replace(out.pricing.clone());
                (out, patch)
            }
            None => {
                let out = self.algo.run(h);
                let patch = PricingPatch::Replace(out.pricing.clone());
                (out, patch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{self, uniform_bundle_price, uniform_item_price};
    use crate::HypergraphDelta;

    fn graph() -> Hypergraph {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0], 8.0);
        h.add_edge(vec![1], 2.0);
        h.add_edge(vec![0, 1], 9.0);
        h.add_edge(vec![1, 2], 4.0);
        h
    }

    #[test]
    fn ubp_incremental_tracks_the_full_algorithm_exactly() {
        let mut h = graph();
        let mut inc = UbpIncremental::new();
        let primed = inc.prime(&h);
        let full = uniform_bundle_price(&h);
        assert_eq!(primed.pricing, full.pricing);
        assert_eq!(primed.revenue.to_bits(), full.revenue.to_bits());

        let mut delta = HypergraphDelta::new();
        delta
            .add_edge([2usize, 3].into_iter().collect(), 11.0)
            .remove_edge(0)
            .revalue_edge(1, 1.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        let full = uniform_bundle_price(&h);
        assert_eq!(out.pricing, full.pricing);
        assert_eq!(out.revenue.to_bits(), full.revenue.to_bits());
        let Pricing::UniformBundle { price } = full.pricing else {
            unreachable!()
        };
        assert_eq!(patch, PricingPatch::SetUniformPrice(price));
    }

    #[test]
    fn uip_incremental_tracks_the_full_algorithm_exactly() {
        let mut h = graph();
        let mut inc = UipIncremental::new();
        inc.prime(&h);

        let mut delta = HypergraphDelta::new();
        delta
            .add_edge([0usize, 2, 3].into_iter().collect(), 12.0)
            .revalue_edge(2, 3.0)
            .remove_edge(1);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        let full = uniform_item_price(&h);
        assert_eq!(out.pricing, full.pricing);
        assert_eq!(out.revenue.to_bits(), full.revenue.to_bits());
        assert!(matches!(patch, PricingPatch::SetUniformWeight { .. }));
    }

    #[test]
    fn empty_bundles_never_become_rate_candidates() {
        let mut h = Hypergraph::new(2);
        h.add_edge(Vec::<usize>::new(), 5.0);
        h.add_edge(vec![0], 3.0);
        let mut inc = UipIncremental::new();
        inc.prime(&h);
        let mut delta = HypergraphDelta::new();
        delta.remove_edge(0).add_edge(qp_core::ItemSet::new(), 7.0);
        let ops = h.apply_delta(delta);
        let (out, _) = inc.apply(&h, &ops);
        assert_eq!(out.pricing, uniform_item_price(&h).pricing);
    }

    #[test]
    fn xos_incremental_reuses_the_envelope_and_reports_true_revenue() {
        let mut h = graph();
        let mut inc = XosIncremental::new(LpipConfig::default(), CipConfig::default())
            .with_refit_after(f64::INFINITY); // pin the envelope for this test
        let primed = inc.prime(&h);

        let mut delta = HypergraphDelta::new();
        delta.add_edge([3usize].into_iter().collect(), 6.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        // Envelope unchanged, revenue re-read against the new demand.
        assert_eq!(out.pricing, primed.pricing);
        assert_eq!(
            out.revenue.to_bits(),
            revenue::revenue(&h, &out.pricing).to_bits()
        );
        assert_eq!(patch, PricingPatch::Keep);
        assert!(!inc.exact());
    }

    #[test]
    fn xos_incremental_refits_the_envelope_once_churn_accumulates() {
        // Demand shifts wholesale: with the default threshold the envelope
        // must be re-fitted (a Replace patch) instead of going stale.
        let mut h = graph();
        let mut inc = XosIncremental::new(LpipConfig::default(), CipConfig::default());
        let primed = inc.prime(&h);

        let mut delta = HypergraphDelta::new();
        for _ in 0..h.num_edges() {
            delta.remove_edge(0);
        }
        delta
            .add_edge([0usize].into_iter().collect(), 20.0)
            .add_edge([1usize].into_iter().collect(), 25.0)
            .add_edge([2usize].into_iter().collect(), 30.0)
            .add_edge([3usize].into_iter().collect(), 50.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = inc.apply(&h, &ops);
        assert!(
            matches!(patch, PricingPatch::Replace(_)),
            "churn past the threshold must refit, got {patch:?}"
        );
        // The refit equals a fresh full XOS run on the new demand…
        let full = xos_pricing(&h, &LpipConfig::default(), &CipConfig::default());
        assert_eq!(out.pricing, full.pricing);
        assert_ne!(out.pricing, primed.pricing, "the old envelope was stale");
        // …and the churn counter reset: a tiny follow-up delta reuses it.
        let mut delta = HypergraphDelta::new();
        delta.revalue_edge(0, 31.0);
        let ops = h.apply_delta(delta);
        let (_, patch) = inc.apply(&h, &ops);
        assert_eq!(patch, PricingPatch::Keep);
    }

    #[test]
    fn repricer_falls_back_to_full_runs_without_the_capability() {
        let mut h = graph();
        let mut layering = Repricer::new(algorithms::by_name("Layering").unwrap());
        assert!(!layering.is_incremental());
        let (out, patch) = layering.reprice(&h, &[]);
        assert!(matches!(patch, PricingPatch::Replace(_)));

        let mut delta = HypergraphDelta::new();
        delta.remove_edge(2);
        let ops = h.apply_delta(delta);
        let (out2, patch2) = layering.reprice(&h, &ops);
        assert!(matches!(patch2, PricingPatch::Replace(_)));
        // Full reruns both times: outcomes match direct runs.
        assert!(out.revenue >= 0.0 && out2.revenue >= 0.0);
        assert_eq!(
            out2.revenue.to_bits(),
            layering.run_full(&h).revenue.to_bits()
        );
    }

    #[test]
    fn repricer_primes_then_patches_for_incremental_algorithms() {
        let mut h = graph();
        let mut ubp = Repricer::new(algorithms::by_name("UBP").unwrap());
        assert!(ubp.is_incremental());
        assert_eq!(ubp.algorithm(), "UBP");
        let (_, patch) = ubp.reprice(&h, &[]);
        assert!(
            matches!(patch, PricingPatch::Replace(_)),
            "first call primes"
        );

        let mut delta = HypergraphDelta::new();
        delta.add_edge([0usize].into_iter().collect(), 20.0);
        let ops = h.apply_delta(delta);
        let (out, patch) = ubp.reprice(&h, &ops);
        assert!(matches!(patch, PricingPatch::SetUniformPrice(_)));
        assert_eq!(out.pricing, uniform_bundle_price(&h).pricing);
    }

    #[test]
    fn patches_mutate_pricings_in_place_or_replace_on_shape_mismatch() {
        let mut p = Pricing::UniformBundle { price: 3.0 };
        PricingPatch::SetUniformPrice(5.0).apply(&mut p);
        assert_eq!(p, Pricing::UniformBundle { price: 5.0 });

        PricingPatch::SetUniformWeight {
            weight: 2.0,
            num_items: 3,
        }
        .apply(&mut p);
        assert_eq!(
            p,
            Pricing::Item {
                weights: vec![2.0; 3]
            }
        );
        PricingPatch::SetUniformWeight {
            weight: 4.0,
            num_items: 3,
        }
        .apply(&mut p);
        assert_eq!(
            p,
            Pricing::Item {
                weights: vec![4.0; 3]
            }
        );

        let before = p.clone();
        PricingPatch::Keep.apply(&mut p);
        assert_eq!(p, before);

        PricingPatch::Replace(Pricing::UniformBundle { price: 1.0 }).apply(&mut p);
        assert_eq!(p, Pricing::UniformBundle { price: 1.0 });
    }

    #[test]
    fn negative_zero_valuations_normalize_into_the_positive_key() {
        assert_eq!(key(-0.0), key(0.0));
        assert!(key(1.0) > key(0.5));
        assert!(key(f64::INFINITY) > key(1e300));
    }
}
