//! LPIP — LP-based (non-uniform) item pricing (paper §5.2).
//!
//! For every candidate threshold valuation `v_e`, let `F_e` be the set of
//! bundles with valuation at least `v_e`. LPIP solves the linear program
//!
//! ```text
//! maximize   Σ_{e'∈F_e} Σ_{j∈e'} w_j
//! subject to Σ_{j∈e'} w_j ≤ v_{e'}       for every e' ∈ F_e
//!            w ≥ 0
//! ```
//!
//! i.e. it maximizes the revenue collected from the bundles it is forced to
//! sell. The uniform item pricing with rate `v_e / |e|` is always feasible for
//! `LP(e)`, so LPIP weakly improves on UIP for each threshold; the best
//! outcome across thresholds is returned. Worst-case guarantee `O(log m)`.

use qp_lp::{ConstraintOp, LpProblem, Sense};

use crate::{revenue, Hypergraph, Pricing, PricingOutcome};

/// Tuning knobs for LPIP.
#[derive(Debug, Clone)]
pub struct LpipConfig {
    /// Maximum number of threshold LPs to solve. When the hypergraph has more
    /// distinct valuations than this, thresholds are subsampled evenly (the
    /// paper solves one LP per edge; subsampling trades a little revenue for
    /// a large running-time reduction on big workloads). `None` solves every
    /// distinct threshold.
    pub max_lps: Option<usize>,
    /// Pivot budget handed to the simplex solver for each threshold LP.
    pub max_lp_iterations: usize,
}

impl Default for LpipConfig {
    fn default() -> Self {
        LpipConfig {
            max_lps: None,
            max_lp_iterations: 200_000,
        }
    }
}

/// Computes a non-uniform item pricing by solving one LP per candidate
/// threshold and keeping the best.
pub fn lp_item_price(h: &Hypergraph, config: &LpipConfig) -> PricingOutcome {
    let n = h.num_items();
    let mut best_weights = vec![0.0; n];
    let mut best_rev = 0.0;

    // Candidate thresholds: distinct valuations in decreasing order.
    let mut thresholds: Vec<f64> = h.edges().iter().map(|e| e.valuation).collect();
    thresholds.sort_by(|a, b| b.partial_cmp(a).unwrap());
    thresholds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    // Optional subsampling of thresholds.
    let thresholds: Vec<f64> = match config.max_lps {
        Some(k) if k > 0 && thresholds.len() > k => {
            let step = thresholds.len() as f64 / k as f64;
            (0..k)
                .map(|i| thresholds[(i as f64 * step) as usize])
                .collect()
        }
        _ => thresholds,
    };

    for &threshold in &thresholds {
        if let Some((weights, _)) = solve_threshold_lp(h, threshold, config.max_lp_iterations) {
            let rev = revenue::item_pricing_revenue(h, &weights);
            if rev > best_rev {
                best_rev = rev;
                best_weights = weights;
            }
        }
    }

    let pricing = Pricing::Item {
        weights: best_weights,
    };
    let rev = revenue::revenue(h, &pricing);
    PricingOutcome {
        algorithm: "LPIP",
        revenue: rev,
        pricing,
    }
}

/// Solves `LP(e)` for the threshold valuation `threshold` and returns the
/// full-length weight vector together with the LP objective.
pub(crate) fn solve_threshold_lp(
    h: &Hypergraph,
    threshold: f64,
    max_iterations: usize,
) -> Option<(Vec<f64>, f64)> {
    let forced: Vec<usize> = h
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.valuation >= threshold - 1e-12)
        .map(|(i, _)| i)
        .collect();
    if forced.is_empty() {
        return None;
    }

    // Restrict LP variables to the items that actually occur in forced edges.
    let mut item_of_var: Vec<usize> = Vec::new();
    let mut var_of_item: Vec<Option<usize>> = vec![None; h.num_items()];
    for &ei in &forced {
        for j in h.edge(ei).items.iter() {
            if var_of_item[j].is_none() {
                var_of_item[j] = Some(item_of_var.len());
                item_of_var.push(j);
            }
        }
    }

    let mut lp = LpProblem::new(Sense::Maximize, item_of_var.len());
    lp.set_max_iterations(max_iterations);
    // Objective: each item weight is collected once per forced edge containing
    // the item.
    for &ei in &forced {
        for j in h.edge(ei).items.iter() {
            lp.add_objective(var_of_item[j].unwrap(), 1.0);
        }
    }
    // Constraints: every forced edge must remain affordable.
    for &ei in &forced {
        let e = h.edge(ei);
        if e.items.is_empty() {
            continue; // 0 <= v_e holds trivially.
        }
        let coeffs: Vec<(usize, f64)> = e
            .items
            .iter()
            .map(|j| (var_of_item[j].unwrap(), 1.0))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Le, e.valuation);
    }

    let sol = lp.solve().ok()?;
    let mut weights = vec![0.0; h.num_items()];
    for (var, &item) in item_of_var.iter().enumerate() {
        weights[item] = sol.primal[var].max(0.0);
    }
    Some((weights, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{test_support, uniform_item_price};

    #[test]
    fn extracts_full_revenue_when_every_edge_has_unique_item() {
        let h = test_support::unique_items();
        let out = lp_item_price(&h, &LpipConfig::default());
        assert_eq!(out.algorithm, "LPIP");
        assert!((out.revenue - h.total_valuation()).abs() < 1e-6);
    }

    #[test]
    fn dominates_uniform_item_pricing() {
        for h in [
            test_support::small(),
            test_support::unique_items(),
            test_support::star(&[1.0, 2.0, 4.0, 8.0]),
        ] {
            let uip = uniform_item_price(&h);
            let lpip = lp_item_price(&h, &LpipConfig::default());
            assert!(
                lpip.revenue + 1e-6 >= uip.revenue,
                "LPIP ({}) must dominate UIP ({})",
                lpip.revenue,
                uip.revenue
            );
        }
    }

    #[test]
    fn small_instance_known_optimum() {
        // Items {0,1,2}; edges: {0}:8, {1}:2, {0,1}:9, {1,2}:4.
        // Weights (8,1,3) sell every edge: 8+1+9+4 = 22... but {0,1} pays
        // 9 ≤ 9 and {1,2} pays 4 ≤ 4, {1} pays 1 ≤ 2 → revenue 8+1+9+4 = 22?
        // Actually {1} pays w_1 = 1, so total = 8 + 1 + 9 + 4 = 22 out of 23.
        let h = test_support::small();
        let out = lp_item_price(&h, &LpipConfig::default());
        assert!(out.revenue >= 21.0 - 1e-6, "got {}", out.revenue);
        assert!(out.revenue <= h.total_valuation() + 1e-9);
    }

    #[test]
    fn threshold_lp_objective_is_revenue_of_forced_edges() {
        let h = test_support::unique_items();
        let (weights, obj) = solve_threshold_lp(&h, 0.0, 100_000).unwrap();
        let rev = revenue::item_pricing_revenue(&h, &weights);
        assert!((obj - rev).abs() < 1e-6);
    }

    #[test]
    fn subsampling_thresholds_still_returns_valid_pricing() {
        let h = test_support::star(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let full = lp_item_price(&h, &LpipConfig::default());
        let sampled = lp_item_price(
            &h,
            &LpipConfig {
                max_lps: Some(3),
                max_lp_iterations: 100_000,
            },
        );
        assert!(sampled.revenue <= full.revenue + 1e-6);
        assert!(sampled.revenue > 0.0);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(4);
        let out = lp_item_price(&h, &LpipConfig::default());
        assert_eq!(out.revenue, 0.0);
    }
}
