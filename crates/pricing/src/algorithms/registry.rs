//! The [`PricingAlgorithm`] trait and the algorithm registry.
//!
//! The paper's experiments (§5, §7) run six pricing algorithms over the same
//! hypergraphs and compare revenue. The registry makes that roster a first-
//! class object: every algorithm is a config struct implementing
//! [`PricingAlgorithm`], [`all`] returns the full roster, and [`by_name`]
//! resolves an algorithm from its paper name — so harnesses, brokers, and
//! examples iterate or select algorithms without hardcoding six call sites.
//!
//! ```
//! use qp_pricing::{algorithms, Hypergraph};
//!
//! let mut h = Hypergraph::new(3);
//! h.add_edge(vec![0], 8.0);
//! h.add_edge(vec![1, 2], 5.0);
//!
//! for algo in algorithms::all() {
//!     let out = algo.run(&h);
//!     assert!(out.revenue <= 13.0 + 1e-6, "{} overshot", algo.name());
//! }
//! let lpip = algorithms::by_name("LPIP").expect("LPIP is registered");
//! assert!(lpip.run(&h).revenue >= 12.9);
//! ```

use crate::{Hypergraph, PricingOutcome};

use super::{
    capacity_item_price, layering, lp_item_price, refine_uniform_bundle_price,
    uniform_bundle_price, uniform_item_price, xos_pricing, CipConfig, IncrementalRepricer,
    LpipConfig, UbpIncremental, UipIncremental, XosIncremental,
};

/// A revenue-maximization algorithm producing an arbitrage-free pricing.
///
/// Implementors are the per-algorithm config structs ([`Ubp`], [`Uip`],
/// [`Lpip`], [`Cip`], [`Layering`], [`Xos`]); the free functions of
/// [`crate::algorithms`] remain available as the underlying implementations.
/// Trait objects are `Send + Sync` so a registry can be shared across the
/// threads of a broker.
pub trait PricingAlgorithm: Send + Sync {
    /// The algorithm's name as used in the paper's figures (e.g. `"LPIP"`).
    fn name(&self) -> &str;

    /// Runs the algorithm on `h` and returns the pricing it found together
    /// with the revenue that pricing earns on `h`.
    fn run(&self, h: &Hypergraph) -> PricingOutcome;

    /// The `RepriceIncremental` capability: algorithms whose optimum has a
    /// cheap update rule return a stateful [`IncrementalRepricer`] that
    /// patches the pricing in place as demand deltas land; the default
    /// (`None`) makes callers — e.g. [`super::Repricer`] — fall back to a
    /// full recompute transparently.
    fn reprice_incremental(&self) -> Option<Box<dyn IncrementalRepricer>> {
        None
    }
}

/// UBP — optimal uniform bundle pricing (§5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ubp;

impl PricingAlgorithm for Ubp {
    fn name(&self) -> &str {
        "UBP"
    }
    fn run(&self, h: &Hypergraph) -> PricingOutcome {
        uniform_bundle_price(h)
    }
    fn reprice_incremental(&self) -> Option<Box<dyn IncrementalRepricer>> {
        Some(Box::new(UbpIncremental::new()))
    }
}

/// UIP — uniform item pricing (Guruswami et al., §5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uip;

impl PricingAlgorithm for Uip {
    fn name(&self) -> &str {
        "UIP"
    }
    fn run(&self, h: &Hypergraph) -> PricingOutcome {
        uniform_item_price(h)
    }
    fn reprice_incremental(&self) -> Option<Box<dyn IncrementalRepricer>> {
        Some(Box::new(UipIncremental::new()))
    }
}

/// LPIP — LP-based non-uniform item pricing (§5.2).
#[derive(Debug, Clone, Default)]
pub struct Lpip {
    /// Tuning knobs forwarded to [`lp_item_price`].
    pub config: LpipConfig,
}

impl PricingAlgorithm for Lpip {
    fn name(&self) -> &str {
        "LPIP"
    }
    fn run(&self, h: &Hypergraph) -> PricingOutcome {
        lp_item_price(h, &self.config)
    }
}

/// CIP — capacity-constrained item pricing (Cheung–Swamy, §5.2).
#[derive(Debug, Clone, Default)]
pub struct Cip {
    /// Tuning knobs forwarded to [`capacity_item_price`].
    pub config: CipConfig,
}

impl PricingAlgorithm for Cip {
    fn name(&self) -> &str {
        "CIP"
    }
    fn run(&self, h: &Hypergraph) -> PricingOutcome {
        capacity_item_price(h, &self.config)
    }
}

/// Layering — Algorithm 1 of the paper, a `B`-approximation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Layering;

impl PricingAlgorithm for Layering {
    fn name(&self) -> &str {
        "Layering"
    }
    fn run(&self, h: &Hypergraph) -> PricingOutcome {
        layering(h)
    }
}

/// XOS — the max of the LPIP and CIP price vectors (§5.2).
#[derive(Debug, Clone, Default)]
pub struct Xos {
    /// LPIP component configuration.
    pub lpip: LpipConfig,
    /// CIP component configuration.
    pub cip: CipConfig,
}

impl PricingAlgorithm for Xos {
    fn name(&self) -> &str {
        "XOS"
    }
    fn run(&self, h: &Hypergraph) -> PricingOutcome {
        xos_pricing(h, &self.lpip, &self.cip)
    }
    fn reprice_incremental(&self) -> Option<Box<dyn IncrementalRepricer>> {
        Some(Box::new(XosIncremental::new(
            self.lpip.clone(),
            self.cip.clone(),
        )))
    }
}

/// UBP refinement (§6.3) — not part of the paper's six-algorithm roster, but
/// registered under `"UBP-refined"` for [`by_name`] callers.
#[derive(Debug, Clone, Copy, Default)]
pub struct UbpRefined;

impl PricingAlgorithm for UbpRefined {
    fn name(&self) -> &str {
        "UBP-refined"
    }
    fn run(&self, h: &Hypergraph) -> PricingOutcome {
        refine_uniform_bundle_price(h)
    }
}

/// The paper names of the six-algorithm roster, in presentation order.
pub const PAPER_ALGORITHMS: [&str; 6] = ["UBP", "UIP", "LPIP", "CIP", "Layering", "XOS"];

/// The paper's six algorithms with default configurations.
pub fn all() -> Vec<Box<dyn PricingAlgorithm>> {
    all_with(&LpipConfig::default(), &CipConfig::default())
}

/// The paper's six algorithms with explicit LPIP / CIP tuning (the two
/// LP-based algorithms are the only configurable ones; XOS inherits both).
pub fn all_with(lpip: &LpipConfig, cip: &CipConfig) -> Vec<Box<dyn PricingAlgorithm>> {
    vec![
        Box::new(Ubp),
        Box::new(Uip),
        Box::new(Lpip {
            config: lpip.clone(),
        }),
        Box::new(Cip {
            config: cip.clone(),
        }),
        Box::new(Layering),
        Box::new(Xos {
            lpip: lpip.clone(),
            cip: cip.clone(),
        }),
    ]
}

/// Resolves an algorithm by name with default configuration.
///
/// Matching is case-insensitive and accepts the historical output label
/// `"XOS-LPIP+CIP"` as an alias for `"XOS"`. Returns `None` for unknown
/// names.
pub fn by_name(name: &str) -> Option<Box<dyn PricingAlgorithm>> {
    by_name_with(name, &LpipConfig::default(), &CipConfig::default())
}

/// Resolves an algorithm by name with explicit LPIP / CIP tuning.
///
/// Derived from the [`all_with`] roster (plus the off-roster
/// [`UbpRefined`]), so a registered algorithm is resolvable by construction.
pub fn by_name_with(
    name: &str,
    lpip: &LpipConfig,
    cip: &CipConfig,
) -> Option<Box<dyn PricingAlgorithm>> {
    let wanted = match name.to_ascii_lowercase().as_str() {
        // Historical output label of the XOS heuristic.
        "xos-lpip+cip" => "xos".to_string(),
        other => other.to_string(),
    };
    all_with(lpip, cip)
        .into_iter()
        .chain([Box::new(UbpRefined) as Box<dyn PricingAlgorithm>])
        .find(|a| a.name().eq_ignore_ascii_case(&wanted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support;
    use crate::revenue;

    #[test]
    fn all_exposes_the_six_paper_algorithms_in_order() {
        let names: Vec<String> = all().iter().map(|a| a.name().to_string()).collect();
        assert_eq!(names, PAPER_ALGORITHMS);
    }

    #[test]
    fn by_name_round_trips_every_registered_name() {
        for algo in all() {
            let resolved = by_name(algo.name())
                .unwrap_or_else(|| panic!("{} not resolvable by name", algo.name()));
            assert_eq!(resolved.name(), algo.name());
        }
        // The refinement is registered too, outside the six-name roster.
        assert_eq!(by_name("UBP-refined").unwrap().name(), "UBP-refined");
    }

    #[test]
    fn by_name_is_case_insensitive_and_knows_the_xos_alias() {
        assert_eq!(by_name("lpip").unwrap().name(), "LPIP");
        assert_eq!(by_name("LAYERING").unwrap().name(), "Layering");
        assert_eq!(by_name("XOS-LPIP+CIP").unwrap().name(), "XOS");
        assert!(by_name("no-such-algorithm").is_none());
    }

    #[test]
    fn registry_outcomes_match_the_free_functions() {
        let h = test_support::small();
        for algo in all() {
            let out = algo.run(&h);
            let recomputed = revenue::revenue(&h, &out.pricing);
            assert!(
                (recomputed - out.revenue).abs() < 1e-6,
                "{}: reported {} but pricing earns {}",
                algo.name(),
                out.revenue,
                recomputed
            );
        }
        let ubp = by_name("UBP").unwrap().run(&h);
        assert_eq!(ubp.revenue, uniform_bundle_price(&h).revenue);
    }

    #[test]
    fn configured_registry_respects_the_configs() {
        let h = test_support::star(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let tight = LpipConfig {
            max_lps: Some(2),
            ..Default::default()
        };
        let full = by_name("LPIP").unwrap().run(&h);
        let sampled = by_name_with("LPIP", &tight, &CipConfig::default())
            .unwrap()
            .run(&h);
        assert!(sampled.revenue <= full.revenue + 1e-6);
    }
}
