//! XOS pricing — the maximum of the LPIP and CIP price vectors (paper §5.2).
//!
//! The paper's XOS heuristic combines the two strongest additive pricings by
//! charging each bundle the larger of the two additive prices. The resulting
//! function is XOS (fractionally subadditive), hence still arbitrage-free,
//! but — as the paper observes — taking the max can overshoot valuations and
//! lose sales, so its revenue is *not* the max of the component revenues.

use crate::algorithms::{capacity_item_price, lp_item_price, CipConfig, LpipConfig};
use crate::{revenue, Hypergraph, Pricing, PricingOutcome};

/// Builds the XOS pricing from the LPIP and CIP item-price vectors.
pub fn xos_pricing(
    h: &Hypergraph,
    lpip_config: &LpipConfig,
    cip_config: &CipConfig,
) -> PricingOutcome {
    let lpip = lp_item_price(h, lpip_config);
    let cip = capacity_item_price(h, cip_config);
    xos_from_components(h, &[lpip.pricing, cip.pricing])
}

/// Builds an XOS pricing from the additive components of `pricings` and
/// evaluates it on `h`.
///
/// Accepting [`Pricing`] values (rather than raw weight vectors) lets XOS
/// compose directly with registry-produced outcomes: an [`Pricing::Item`]
/// contributes its weight vector, and a [`Pricing::Xos`] contributes every
/// one of its components (so XOS composition is associative). A
/// [`Pricing::UniformBundle`] has no additive representation and cannot
/// participate in an XOS envelope; passing one panics, as that is always a
/// caller bug rather than a recoverable condition.
pub fn xos_from_components(h: &Hypergraph, pricings: &[Pricing]) -> PricingOutcome {
    let mut components: Vec<Vec<f64>> = Vec::with_capacity(pricings.len());
    for p in pricings {
        match p {
            Pricing::Item { weights } => components.push(weights.clone()),
            Pricing::Xos { components: inner } => components.extend(inner.iter().cloned()),
            Pricing::UniformBundle { .. } => {
                panic!("uniform bundle pricing is not additive and cannot be an XOS component")
            }
        }
    }
    let pricing = Pricing::Xos { components };
    let rev = revenue::revenue(h, &pricing);
    PricingOutcome {
        algorithm: "XOS",
        revenue: rev,
        pricing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support;
    use crate::BundlePricing;

    #[test]
    fn component_prices_lower_bound_the_xos_price() {
        let h = test_support::small();
        let out = xos_pricing(&h, &LpipConfig::default(), &CipConfig::default());
        let Pricing::Xos { components } = &out.pricing else {
            panic!("expected XOS pricing");
        };
        assert_eq!(components.len(), 2);
        for e in h.edges() {
            let p = out.pricing.price_set(&e.items);
            for c in components {
                let add: f64 = e
                    .items
                    .iter()
                    .map(|j| c.get(j).copied().unwrap_or(0.0))
                    .sum();
                assert!(p + 1e-9 >= add);
            }
        }
    }

    #[test]
    fn revenue_is_bounded_by_sum_of_valuations() {
        let h = test_support::star(&[2.0, 5.0, 8.0, 11.0]);
        let out = xos_pricing(&h, &LpipConfig::default(), &CipConfig::default());
        assert!(out.revenue <= h.total_valuation() + 1e-6);
        assert!(out.revenue >= 0.0);
    }

    #[test]
    fn unique_item_instance_keeps_full_revenue() {
        // Both components support full extraction and agree, so the max does
        // not overshoot.
        let h = test_support::unique_items();
        let out = xos_pricing(&h, &LpipConfig::default(), &CipConfig::default());
        assert!((out.revenue - h.total_valuation()).abs() < 1e-5);
    }

    #[test]
    fn composes_with_nested_xos_components() {
        let h = test_support::unique_items();
        let a = Pricing::Item {
            weights: vec![5.0, 0.0, 0.0, 0.0],
        };
        let b = Pricing::Xos {
            components: vec![vec![0.0, 7.0, 0.0, 0.0], vec![0.0, 0.0, 5.5, 5.5]],
        };
        let out = xos_from_components(&h, &[a, b]);
        let Pricing::Xos { components } = &out.pricing else {
            panic!("expected XOS pricing");
        };
        assert_eq!(components.len(), 3, "nested XOS components are flattened");
        assert!((out.revenue - h.total_valuation()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not additive")]
    fn uniform_bundle_components_are_rejected() {
        let h = test_support::small();
        xos_from_components(&h, &[Pricing::UniformBundle { price: 3.0 }]);
    }

    #[test]
    fn overshooting_max_can_lose_revenue() {
        // Two buyers: {0} at 10 and {0,1} at 11. Component A sells both for
        // 21; component B overprices the second bundle. Their XOS combination
        // inherits B's overshoot on bundle {0,1} (max(11, 14) = 14 > 11) and
        // loses that sale, ending up strictly worse than component A alone —
        // the paper's observation that the max can overshoot v_Q.
        let mut h = Hypergraph::new(2);
        h.add_edge(vec![0], 10.0);
        h.add_edge(vec![0, 1], 11.0);
        let a = vec![10.0, 1.0];
        let b = vec![5.0, 9.0];
        let rev_a = revenue::item_pricing_revenue(&h, &a);
        let rev_b = revenue::item_pricing_revenue(&h, &b);
        assert_eq!(rev_a, 21.0);
        assert_eq!(rev_b, 5.0);
        let xos = xos_from_components(
            &h,
            &[Pricing::Item { weights: a }, Pricing::Item { weights: b }],
        );
        assert_eq!(xos.revenue, 10.0);
        assert!(xos.revenue < rev_a.max(rev_b));
    }
}
