//! UBP refinement (paper §6.3).
//!
//! The paper observes that the revenue of the best uniform bundle price can
//! often be boosted by a cheap post-processing step: solve an item-pricing LP
//! whose constraints force every bundle sold by the best uniform price to
//! remain sold, and whose objective maximizes the revenue collected from
//! those bundles. On TPC-H this lifted normalized revenue from 0.78 to 0.99
//! in about a second.

use qp_lp::{ConstraintOp, LpProblem, Sense};

use crate::algorithms::uniform_bundle_price;
use crate::{revenue, Hypergraph, Pricing, PricingOutcome};

/// Refines the optimal uniform bundle price into a non-uniform item pricing
/// that still sells every bundle the uniform price sold.
pub fn refine_uniform_bundle_price(h: &Hypergraph) -> PricingOutcome {
    let ubp = uniform_bundle_price(h);
    let Pricing::UniformBundle { price } = ubp.pricing else {
        unreachable!("uniform_bundle_price always returns a uniform bundle pricing")
    };

    // Bundles sold by the uniform price (they can afford P).
    let sold: Vec<usize> = h
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| price <= e.valuation + revenue::SALE_EPS)
        .map(|(i, _)| i)
        .collect();

    if sold.is_empty() {
        return PricingOutcome {
            algorithm: "UBP-refined",
            revenue: 0.0,
            pricing: Pricing::zero_items(h.num_items()),
        };
    }

    // Item-pricing LP over the items of the sold bundles.
    let mut item_of_var = Vec::new();
    let mut var_of_item = vec![None; h.num_items()];
    for &ei in &sold {
        for j in h.edge(ei).items.iter() {
            if var_of_item[j].is_none() {
                var_of_item[j] = Some(item_of_var.len());
                item_of_var.push(j);
            }
        }
    }

    let mut lp = LpProblem::new(Sense::Maximize, item_of_var.len());
    for &ei in &sold {
        for j in h.edge(ei).items.iter() {
            lp.add_objective(var_of_item[j].unwrap(), 1.0);
        }
    }
    for &ei in &sold {
        let e = h.edge(ei);
        if e.items.is_empty() {
            continue;
        }
        let coeffs: Vec<(usize, f64)> = e
            .items
            .iter()
            .map(|j| (var_of_item[j].unwrap(), 1.0))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Le, e.valuation);
    }

    let weights = match lp.solve() {
        Ok(sol) => {
            let mut w = vec![0.0; h.num_items()];
            for (var, &item) in item_of_var.iter().enumerate() {
                w[item] = sol.primal[var].max(0.0);
            }
            w
        }
        Err(_) => vec![0.0; h.num_items()],
    };

    let pricing = Pricing::Item { weights };
    let rev = revenue::revenue(h, &pricing);

    // Never return something worse than plain UBP: the refinement is only a
    // different representation, so fall back when the item pricing loses
    // revenue (possible when many sold bundles are empty).
    if rev + 1e-9 < ubp.revenue {
        PricingOutcome {
            algorithm: "UBP-refined",
            revenue: ubp.revenue,
            pricing: ubp.pricing,
        }
    } else {
        PricingOutcome {
            algorithm: "UBP-refined",
            revenue: rev,
            pricing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support;

    #[test]
    fn refinement_never_loses_revenue() {
        for h in [
            test_support::small(),
            test_support::unique_items(),
            test_support::star(&[1.0, 4.0, 9.0, 16.0]),
        ] {
            let ubp = uniform_bundle_price(&h);
            let refined = refine_uniform_bundle_price(&h);
            assert!(
                refined.revenue + 1e-9 >= ubp.revenue,
                "refined {} < UBP {}",
                refined.revenue,
                ubp.revenue
            );
        }
    }

    #[test]
    fn refinement_can_strictly_improve() {
        // Two disjoint single-item bundles with very different valuations:
        // the best uniform price earns max(2*1, 10) = 10, while item pricing
        // earns 11.
        let mut h = Hypergraph::new(2);
        h.add_edge(vec![0], 10.0);
        h.add_edge(vec![1], 1.0);
        let ubp = uniform_bundle_price(&h);
        let refined = refine_uniform_bundle_price(&h);
        assert!((ubp.revenue - 10.0).abs() < 1e-9);
        // The refinement only keeps the bundles UBP sold (just the 10 one at
        // price 10), so it matches UBP here; with a lower uniform price it
        // would sell both. Verify it at least matches.
        assert!(refined.revenue + 1e-9 >= 10.0);

        // A case where the refinement strictly improves: equal-size bundles
        // with close valuations sold by UBP, but item weights can be skewed.
        let mut h2 = Hypergraph::new(3);
        h2.add_edge(vec![0], 4.0);
        h2.add_edge(vec![1], 5.0);
        h2.add_edge(vec![2], 6.0);
        let ubp2 = uniform_bundle_price(&h2);
        let refined2 = refine_uniform_bundle_price(&h2);
        assert!((ubp2.revenue - 12.0).abs() < 1e-9);
        assert!((refined2.revenue - 15.0).abs() < 1e-6);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(2);
        let out = refine_uniform_bundle_price(&h);
        assert_eq!(out.revenue, 0.0);
    }
}
