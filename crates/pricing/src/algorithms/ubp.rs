//! UBP — optimal uniform bundle pricing (paper §5.1).
//!
//! Sort the valuations in decreasing order; selling at price `P = v_e` sells
//! exactly the prefix of buyers whose valuation is at least `v_e`, so the
//! optimal uniform price is found with one linear pass. Runs in `O(m log m)`
//! and is an `O(log m)`-approximation of Σ valuations (Lemma 1).

use crate::{revenue, Hypergraph, Pricing, PricingOutcome};

/// Computes the revenue-optimal uniform bundle price.
pub fn uniform_bundle_price(h: &Hypergraph) -> PricingOutcome {
    let mut vals: Vec<f64> = h.edges().iter().map(|e| e.valuation).collect();
    // Decreasing order; setting the price to the j-th largest valuation sells
    // exactly j+1 bundles.
    vals.sort_by(|a, b| b.partial_cmp(a).unwrap());

    let mut best_price = 0.0;
    let mut best_rev = 0.0;
    for (j, &v) in vals.iter().enumerate() {
        let rev = v * (j + 1) as f64;
        if rev > best_rev {
            best_rev = rev;
            best_price = v;
        }
    }

    let pricing = Pricing::UniformBundle { price: best_price };
    let rev = revenue::revenue(h, &pricing);
    PricingOutcome {
        algorithm: "UBP",
        revenue: rev,
        pricing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support;
    use crate::revenue::uniform_bundle_revenue;

    #[test]
    fn finds_optimal_price_on_small_instance() {
        // Valuations 8, 2, 9, 4: candidate prices give revenues
        // 9*1=9, 8*2=16, 4*3=12, 2*4=8 → optimum is price 8, revenue 16.
        let h = test_support::small();
        let out = uniform_bundle_price(&h);
        assert_eq!(out.algorithm, "UBP");
        assert!((out.revenue - 16.0).abs() < 1e-9);
        match out.pricing {
            Pricing::UniformBundle { price } => assert!((price - 8.0).abs() < 1e-9),
            _ => panic!("UBP must return a uniform bundle pricing"),
        }
    }

    #[test]
    fn beats_or_matches_every_candidate_valuation_price() {
        let h = test_support::star(&[1.0, 3.0, 3.0, 7.0, 10.0]);
        let out = uniform_bundle_price(&h);
        for e in h.edges() {
            assert!(out.revenue + 1e-9 >= uniform_bundle_revenue(&h, e.valuation));
        }
    }

    #[test]
    fn equal_valuations_extract_everything() {
        let h = test_support::star(&[5.0; 6]);
        let out = uniform_bundle_price(&h);
        assert!((out.revenue - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_hypergraph_yields_zero() {
        let h = Hypergraph::new(3);
        let out = uniform_bundle_price(&h);
        assert_eq!(out.revenue, 0.0);
    }

    #[test]
    fn harmonic_instance_exhibits_log_gap() {
        // Lemma 2-style valuations 1, 1/2, ..., 1/m: UBP can only get O(1)
        // while the sum of valuations is H_m = Θ(log m).
        let m = 256;
        let mut h = Hypergraph::new(m);
        for i in 0..m {
            h.add_edge(vec![i], 1.0 / (i as f64 + 1.0));
        }
        let out = uniform_bundle_price(&h);
        assert!(out.revenue <= 1.0 + 1e-9);
        assert!(h.total_valuation() > 5.0); // H_256 ≈ 6.1
    }
}
