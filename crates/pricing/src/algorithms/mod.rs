//! The pricing algorithms evaluated in the paper (§5).
//!
//! Every algorithm takes a [`crate::Hypergraph`] and returns a
//! [`crate::PricingOutcome`] holding the pricing function it found and the
//! revenue that function achieves on the input. Revenue is always re-computed
//! through [`crate::revenue`], so the reported number is exactly what the
//! returned pricing function earns — not an internal LP objective.
//!
//! Prefer driving algorithms through the [`PricingAlgorithm`] registry
//! ([`all`], [`by_name`]) rather than calling the per-algorithm free
//! functions: the registry gives every algorithm the same `run(&Hypergraph)`
//! shape, so harnesses and brokers can iterate, select, and swap algorithms
//! uniformly. The free functions remain as the underlying implementations.

mod cip;
mod incremental;
mod layering;
mod lpip;
mod refine;
mod registry;
mod ubp;
mod uip;
mod xos;

pub use cip::{capacity_item_price, CipConfig};
pub use incremental::{
    reference, IncrementalRepricer, PricingPatch, RateTable, Repricer, UbpIncremental,
    UipIncremental, XosIncremental,
};
pub use layering::layering;
pub use lpip::{lp_item_price, LpipConfig};
pub use refine::refine_uniform_bundle_price;
pub use registry::{
    all, all_with, by_name, by_name_with, Cip, Layering, Lpip, PricingAlgorithm, Ubp, UbpRefined,
    Uip, Xos, PAPER_ALGORITHMS,
};
pub use ubp::uniform_bundle_price;
pub use uip::uniform_item_price;
pub use xos::{xos_from_components, xos_pricing};

#[cfg(test)]
pub(crate) mod test_support {
    use crate::Hypergraph;

    /// A small hand-checkable instance: three items, four buyers.
    pub fn small() -> Hypergraph {
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0], 8.0);
        h.add_edge(vec![1], 2.0);
        h.add_edge(vec![0, 1], 9.0);
        h.add_edge(vec![1, 2], 4.0);
        h
    }

    /// An instance where every edge has a unique item, so full revenue is
    /// extractable by item pricing.
    pub fn unique_items() -> Hypergraph {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0], 5.0);
        h.add_edge(vec![1], 7.0);
        h.add_edge(vec![2, 3], 11.0);
        h
    }

    /// A star instance: every buyer shares item 0.
    pub fn star(valuations: &[f64]) -> Hypergraph {
        let mut h = Hypergraph::new(valuations.len() + 1);
        for (i, &v) in valuations.iter().enumerate() {
            h.add_edge(vec![0, i + 1], v);
        }
        h
    }
}
