//! The Layering algorithm (Algorithm 1 of the paper).
//!
//! Repeatedly peel a *minimal set cover* of the remaining items; each such
//! layer has the property that every edge in it contains an item unique to it
//! within the layer. The layer with the largest total valuation is selected
//! and, inside it, every edge's unique item is priced at the edge valuation
//! (all other items at zero), extracting the layer's full value. The
//! algorithm runs in `O(Bm)` time and is a `B`-approximation; the paper finds
//! it is often far better in practice when high-value edges have unique
//! items.
//!
//! The inner loops run on the bitset representation: greedy-cover gains are
//! popcounts of `edge ∩ remaining`, and the minimality pass keeps per-item
//! multiplicities inside the cover instead of rescanning edge pairs.

use qp_core::ItemSet;

use crate::{revenue, Hypergraph, Pricing, PricingOutcome};

/// Runs the layering algorithm and returns the resulting item pricing.
pub fn layering(h: &Hypergraph) -> PricingOutcome {
    let n = h.num_items();
    // Only non-empty edges participate: empty edges can never cover anything.
    let mut remaining: Vec<usize> = (0..h.num_edges())
        .filter(|&i| h.edge(i).size() > 0)
        .collect();

    let mut best_layer: Vec<usize> = Vec::new();
    let mut best_value = 0.0;

    let mut in_layer = vec![false; h.num_edges()];
    while !remaining.is_empty() {
        let layer = minimal_set_cover(h, &remaining);
        let value: f64 = layer.iter().map(|&i| h.edge(i).valuation).sum();
        if value > best_value {
            best_value = value;
            best_layer = layer.clone();
        }
        // Remove the layer's edges and continue with the rest.
        for &i in &layer {
            in_layer[i] = true;
        }
        remaining.retain(|&i| !in_layer[i]);
    }

    // Price the unique item of every edge in the chosen layer at the edge's
    // valuation. One pass computes the within-layer degree of every item;
    // an item is unique to an edge iff its layer degree is 1.
    let layer_deg = layer_degrees(h, &best_layer);
    let mut weights = vec![0.0; n];
    for &ei in &best_layer {
        if let Some(unique) = unique_item(h, ei, &layer_deg) {
            weights[unique] = h.edge(ei).valuation;
        }
    }

    let pricing = Pricing::Item { weights };
    let rev = revenue::revenue(h, &pricing);
    PricingOutcome {
        algorithm: "Layering",
        revenue: rev,
        pricing,
    }
}

/// Number of `layer` edges containing each item.
fn layer_degrees(h: &Hypergraph, layer: &[usize]) -> Vec<usize> {
    let mut deg = vec![0usize; h.num_items()];
    for &ei in layer {
        for j in h.edge(ei).items.iter() {
            deg[j] += 1;
        }
    }
    deg
}

/// Greedy set cover of the items covered by `edges`, post-processed to be
/// minimal (no edge can be dropped without uncovering an item).
fn minimal_set_cover(h: &Hypergraph, edges: &[usize]) -> Vec<usize> {
    let mut uncovered = ItemSet::new();
    for &ei in edges {
        uncovered.union_with(&h.edge(ei).items);
    }

    // The greedy loop re-examines every candidate edge per round. Cache each
    // edge's item list once: for the sparse edges typical of large supports,
    // walking the short list with O(1) bitset membership beats a full
    // block-wise intersection, and an edge whose *total* size cannot beat
    // the current best gain is skipped without touching the bitset at all.
    let lists: Vec<Vec<usize>> = edges.iter().map(|&ei| h.edge(ei).items.to_vec()).collect();

    let mut cover: Vec<usize> = Vec::new();
    let mut picked = vec![false; edges.len()];
    while !uncovered.is_empty() {
        let mut best_candidate = None;
        let mut best_gain = 0usize;
        for (k, list) in lists.iter().enumerate() {
            if picked[k] || list.len() <= best_gain {
                continue; // gain ≤ |e| can never exceed best_gain
            }
            let gain = list.iter().filter(|&&j| uncovered.contains(j)).count();
            if gain > best_gain {
                best_gain = gain;
                best_candidate = Some(k);
            }
        }
        let Some(k) = best_candidate else { break };
        picked[k] = true;
        cover.push(edges[k]);
        uncovered.difference_with(&h.edge(edges[k]).items);
    }

    // Minimality phase: drop edges whose items are all covered at least
    // twice within the (kept) cover. Iterate in increasing valuation order so
    // that low-value redundant edges are preferentially discarded.
    let mut cover_deg = layer_degrees(h, &cover);
    let mut order: Vec<usize> = (0..cover.len()).collect();
    order.sort_by(|&a, &b| {
        h.edge(cover[a])
            .valuation
            .partial_cmp(&h.edge(cover[b]).valuation)
            .unwrap()
    });
    let mut keep: Vec<bool> = vec![true; cover.len()];
    for &ci in &order {
        let ei = cover[ci];
        let removable = h.edge(ei).items.iter().all(|j| cover_deg[j] >= 2);
        if removable {
            keep[ci] = false;
            for j in h.edge(ei).items.iter() {
                cover_deg[j] -= 1;
            }
        }
    }
    cover
        .into_iter()
        .enumerate()
        .filter(|(ci, _)| keep[*ci])
        .map(|(_, ei)| ei)
        .collect()
}

/// An item of edge `ei` that belongs to no other edge of the layer with
/// degrees `layer_deg`, if any.
fn unique_item(h: &Hypergraph, ei: usize, layer_deg: &[usize]) -> Option<usize> {
    h.edge(ei).items.iter().find(|&j| layer_deg[j] == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support;

    #[test]
    fn unique_item_instance_extracts_everything() {
        let h = test_support::unique_items();
        let out = layering(&h);
        assert_eq!(out.algorithm, "Layering");
        assert!((out.revenue - h.total_valuation()).abs() < 1e-9);
    }

    #[test]
    fn respects_the_b_approximation_bound_on_disjoint_edges() {
        // Disjoint edges: B = 1, so layering must extract the full value.
        let mut h = Hypergraph::new(6);
        h.add_edge(vec![0, 1], 4.0);
        h.add_edge(vec![2, 3], 7.0);
        h.add_edge(vec![4, 5], 1.0);
        let out = layering(&h);
        assert!((out.revenue - 12.0).abs() < 1e-9);
    }

    #[test]
    fn layer_value_lower_bound_holds() {
        // Revenue is at least total/B (Theorem 2).
        let h = test_support::star(&[5.0, 3.0, 9.0, 2.0]);
        let b = h.max_degree() as f64;
        let out = layering(&h);
        assert!(out.revenue + 1e-9 >= h.total_valuation() / b);
    }

    #[test]
    fn empty_edges_are_ignored() {
        let mut h = Hypergraph::new(2);
        h.add_edge(Vec::<usize>::new(), 100.0);
        h.add_edge(vec![0], 5.0);
        h.add_edge(vec![1], 7.0);
        let out = layering(&h);
        // The empty edge contributes nothing but is "sold" at price 0.
        assert!((out.revenue - 12.0).abs() < 1e-9);
    }

    #[test]
    fn minimal_cover_has_unique_items_for_every_edge() {
        let h = test_support::small();
        let all: Vec<usize> = (0..h.num_edges())
            .filter(|&i| h.edge(i).size() > 0)
            .collect();
        let cover = minimal_set_cover(&h, &all);
        let deg = layer_degrees(&h, &cover);
        for &ei in &cover {
            assert!(
                unique_item(&h, ei, &deg).is_some(),
                "edge {ei} in a minimal cover must have a unique item"
            );
        }
        // The cover covers every item that appears in some edge.
        let mut covered = ItemSet::new();
        for &ei in &cover {
            covered.union_with(&h.edge(ei).items);
        }
        for &j in h.active_items() {
            assert!(covered.contains(j));
        }
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(3);
        assert_eq!(layering(&h).revenue, 0.0);
    }
}
