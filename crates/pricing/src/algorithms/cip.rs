//! CIP — capacity-constrained item pricing (Cheung & Swamy, paper §5.2).
//!
//! For a capacity `k`, consider the welfare-maximization LP
//!
//! ```text
//! maximize   Σ_e v_e x_e
//! subject to Σ_{e ∋ j} x_e ≤ k   for every item j
//!            0 ≤ x_e ≤ 1
//! ```
//!
//! The optimal duals of the capacity constraints are used as item prices.
//! Rather than solving this primal (which has one row per item — items vastly
//! outnumber bundles in query pricing), we solve its LP dual directly:
//!
//! ```text
//! minimize   k·Σ_j y_j + Σ_e z_e
//! subject to Σ_{j∈e} y_j + z_e ≥ v_e   for every bundle e
//!            y, z ≥ 0
//! ```
//!
//! whose variables `y_j` are exactly the desired item prices and whose row
//! count is the number of bundles. Sweeping `k` over a `(1+ε)`-geometric grid
//! from 1 to the maximum degree `B` and keeping the best revenue yields the
//! `O((1+ε) log B)` guarantee of the paper.

use qp_lp::{ConstraintOp, LpProblem, Sense};

use crate::{revenue, Hypergraph, Pricing, PricingOutcome};

/// Tuning knobs for CIP.
#[derive(Debug, Clone)]
pub struct CipConfig {
    /// Step factor of the capacity sweep: capacities `1, (1+ε), (1+ε)², …`
    /// up to the maximum degree are tried. Larger ε means fewer (and faster)
    /// LP solves at the cost of a `(1+ε)` factor in the guarantee — exactly
    /// the trade-off the paper makes (ε between 0.2 and 4 in their runs).
    pub epsilon: f64,
    /// Pivot budget per LP solve.
    pub max_lp_iterations: usize,
}

impl Default for CipConfig {
    fn default() -> Self {
        CipConfig {
            epsilon: 0.5,
            max_lp_iterations: 200_000,
        }
    }
}

/// Computes an item pricing via the capacity-constrained primal–dual scheme.
pub fn capacity_item_price(h: &Hypergraph, config: &CipConfig) -> PricingOutcome {
    assert!(config.epsilon > 0.0, "epsilon must be positive");
    let n = h.num_items();
    let mut best_weights = vec![0.0; n];
    let mut best_rev = 0.0;

    let max_degree = h.max_degree().max(1) as f64;
    let mut k = 1.0f64;
    let mut capacities = Vec::new();
    while k <= max_degree * (1.0 + config.epsilon) {
        capacities.push(k.min(max_degree));
        if (k - max_degree).abs() < 1e-12 || k > max_degree {
            break;
        }
        k *= 1.0 + config.epsilon;
    }
    capacities.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    for &cap in &capacities {
        if let Some(weights) = solve_capacity_dual(h, cap, config.max_lp_iterations) {
            let rev = revenue::item_pricing_revenue(h, &weights);
            if rev > best_rev {
                best_rev = rev;
                best_weights = weights;
            }
        }
    }

    let pricing = Pricing::Item {
        weights: best_weights,
    };
    let rev = revenue::revenue(h, &pricing);
    PricingOutcome {
        algorithm: "CIP",
        revenue: rev,
        pricing,
    }
}

/// Solves the dual of the capacity-`k` welfare LP and returns the item-price
/// vector `y` (full length, zeros for items outside every bundle).
pub(crate) fn solve_capacity_dual(
    h: &Hypergraph,
    capacity: f64,
    max_iterations: usize,
) -> Option<Vec<f64>> {
    let active = h.active_items();
    if h.num_edges() == 0 {
        return Some(vec![0.0; h.num_items()]);
    }
    let mut var_of_item: Vec<Option<usize>> = vec![None; h.num_items()];
    for (v, &j) in active.iter().enumerate() {
        var_of_item[j] = Some(v);
    }
    let n_y = active.len();
    let m = h.num_edges();

    // Variables: y_0..y_{n_y-1}, then z_0..z_{m-1}.
    let mut lp = LpProblem::new(Sense::Minimize, n_y + m);
    lp.set_max_iterations(max_iterations);
    for v in 0..n_y {
        lp.set_objective(v, capacity);
    }
    for e in 0..m {
        lp.set_objective(n_y + e, 1.0);
    }
    for (ei, e) in h.edges().iter().enumerate() {
        let mut coeffs: Vec<(usize, f64)> = e
            .items
            .iter()
            .map(|j| (var_of_item[j].unwrap(), 1.0))
            .collect();
        coeffs.push((n_y + ei, 1.0));
        lp.add_constraint(coeffs, ConstraintOp::Ge, e.valuation);
    }

    let sol = lp.solve().ok()?;
    let mut weights = vec![0.0; h.num_items()];
    for (v, &j) in active.iter().enumerate() {
        weights[j] = sol.primal[v].max(0.0);
    }
    Some(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support;

    #[test]
    fn capacity_one_star_prices_at_top_valuations() {
        // Star with valuations 1..5 sharing item 0; with capacity 1 the
        // welfare LP packs only the most valuable bundle per unit of item 0,
        // and the dual price of item 0 is high.
        let h = test_support::star(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let out = capacity_item_price(&h, &CipConfig::default());
        assert_eq!(out.algorithm, "CIP");
        assert!(out.revenue > 0.0);
        assert!(out.revenue <= h.total_valuation() + 1e-6);
    }

    #[test]
    fn unique_item_instance_extracts_everything() {
        let h = test_support::unique_items();
        let out = capacity_item_price(&h, &CipConfig::default());
        // With capacity >= 1 every bundle is packed and the duals support the
        // full valuations.
        assert!(
            (out.revenue - h.total_valuation()).abs() < 1e-5,
            "got {}",
            out.revenue
        );
    }

    #[test]
    fn dual_solution_supports_all_valuations() {
        // Constraint Σ_{j∈e} y_j + z_e ≥ v_e with z free means that whenever
        // z_e = 0, the item prices cover the valuation. We simply check the
        // returned prices are non-negative and finite.
        let h = test_support::small();
        let w = solve_capacity_dual(&h, 2.0, 100_000).unwrap();
        assert_eq!(w.len(), h.num_items());
        assert!(w.iter().all(|&x| x.is_finite() && x >= 0.0));
    }

    #[test]
    fn larger_epsilon_never_crashes_and_stays_bounded() {
        let h = test_support::star(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0]);
        for eps in [0.2, 1.0, 4.0] {
            let out = capacity_item_price(
                &h,
                &CipConfig {
                    epsilon: eps,
                    max_lp_iterations: 100_000,
                },
            );
            assert!(out.revenue >= 0.0);
            assert!(out.revenue <= h.total_valuation() + 1e-6);
        }
    }

    #[test]
    fn empty_hypergraph_is_fine() {
        let h = Hypergraph::new(5);
        let out = capacity_item_price(&h, &CipConfig::default());
        assert_eq!(out.revenue, 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_is_rejected() {
        let h = test_support::small();
        capacity_item_price(
            &h,
            &CipConfig {
                epsilon: 0.0,
                max_lp_iterations: 10,
            },
        );
    }
}
