//! Worst-case instances from the paper's lower bounds (Lemmas 2–4, Appendix A).
//!
//! These constructions witness the Ω(log m) separations summarized in
//! Figure 3: instances where uniform bundle pricing, item pricing, or both
//! lose a logarithmic factor against the optimal monotone subadditive
//! pricing. They are used by the test suite and by the `lower_bound_gaps`
//! experiment binary to verify that the implemented algorithms actually
//! exhibit the predicted gaps.

use crate::Hypergraph;

/// Lemma 2: `m` buyers, buyer `i` (1-indexed) wants its own item at valuation
/// `1/i`. Item pricing extracts the full harmonic sum `H_m = Θ(log m)`, while
/// any uniform bundle price earns `O(1)`.
pub fn harmonic_singletons(m: usize) -> Hypergraph {
    let mut h = Hypergraph::new(m);
    for i in 0..m {
        h.add_edge(vec![i], 1.0 / (i + 1) as f64);
    }
    h
}

/// Lemma 3: customer classes `C_i`, `i = 1..=n`, over a shared ground set of
/// `n` items. Class `C_i` has `⌈n/i⌉` customers, each assigned a block of `i`
/// items so that no two customers in the class share an item. All valuations
/// are 1. A uniform bundle price of 1 extracts everything (`Θ(n log n)`),
/// while any item pricing earns only `O(n)`.
pub fn partition_classes(n: usize) -> Hypergraph {
    let mut h = Hypergraph::new(n);
    for class in 1..=n {
        let mut start = 0usize;
        while start < n {
            let end = (start + class).min(n);
            h.add_edge(start..end, 1.0);
            start = end;
        }
    }
    h
}

/// Lemma 4: the laminar binary-tree family over `n = 2^t` items. Depth `ℓ`
/// holds `2^ℓ` sets of size `n / 2^ℓ`, each with valuation `(3/4)^ℓ` and
/// `⌈(2/3)^ℓ · 3^t⌉` copies. The optimal subadditive (indeed submodular)
/// pricing extracts `(t+1)·3^t`, while both uniform bundle pricing and item
/// pricing are stuck at `O(3^t)`.
pub fn laminar_family(t: u32) -> Hypergraph {
    let n = 1usize << t;
    let mut h = Hypergraph::new(n);
    let copies_base = 3f64.powi(t as i32);
    for depth in 0..=t {
        let sets_at_depth = 1usize << depth;
        let set_size = n >> depth;
        let valuation = 0.75f64.powi(depth as i32);
        let copies = ((2f64 / 3f64).powi(depth as i32) * copies_base).ceil() as usize;
        for s in 0..sets_at_depth {
            let start = s * set_size;
            for _ in 0..copies {
                h.add_edge(start..start + set_size, valuation);
            }
        }
    }
    h
}

/// The optimal revenue of the laminar family (pricing every bundle at its
/// value): `(t+1) · 3^t` up to the rounding of copy counts.
pub fn laminar_optimal_revenue(t: u32) -> f64 {
    let mut total = 0.0;
    let copies_base = 3f64.powi(t as i32);
    for depth in 0..=t {
        let sets_at_depth = (1usize << depth) as f64;
        let valuation = 0.75f64.powi(depth as i32);
        let copies = ((2f64 / 3f64).powi(depth as i32) * copies_base).ceil();
        total += sets_at_depth * copies * valuation;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{
        layering, lp_item_price, uniform_bundle_price, uniform_item_price, LpipConfig,
    };

    #[test]
    fn harmonic_instance_separates_ubp_from_item_pricing() {
        let m = 128;
        let h = harmonic_singletons(m);
        let sum = h.total_valuation(); // H_128 ≈ 5.43
        assert!(sum > 4.8);

        let ubp = uniform_bundle_price(&h);
        assert!(ubp.revenue <= 1.0 + 1e-9, "UBP is O(1) on Lemma 2");

        // Item pricing (already found by LPIP or even the layering algorithm)
        // extracts the full harmonic sum.
        let lpip = lp_item_price(&h, &LpipConfig::default());
        assert!((lpip.revenue - sum).abs() < 1e-6);
        let lay = layering(&h);
        assert!((lay.revenue - sum).abs() < 1e-6);
    }

    #[test]
    fn partition_classes_separates_item_pricing_from_ubp() {
        let n = 32;
        let h = partition_classes(n);
        // m = Σ_i ceil(n/i) ≈ n ln n edges, all with valuation 1.
        let m = h.num_edges();
        assert!(m > n * 3);
        let sum = h.total_valuation();
        assert_eq!(sum, m as f64);

        // Uniform bundle price 1 extracts everything.
        let ubp = uniform_bundle_price(&h);
        assert!((ubp.revenue - sum).abs() < 1e-9);

        // Any item pricing is O(n): check that the best uniform item pricing
        // (a representative item pricing) is at most a constant multiple of n.
        let uip = uniform_item_price(&h);
        assert!(
            uip.revenue <= 4.0 * n as f64,
            "UIP revenue {} should be O(n) = O({})",
            uip.revenue,
            n
        );
        assert!(
            uip.revenue < 0.7 * sum,
            "item pricing must lose a log factor"
        );
    }

    #[test]
    fn laminar_family_hurts_both_classes() {
        let t = 3; // 8 items
        let h = laminar_family(t);
        let opt = laminar_optimal_revenue(t);
        assert!(h.total_valuation() >= opt - 1e-9);

        let ubp = uniform_bundle_price(&h);
        let uip = uniform_item_price(&h);
        let lpip = lp_item_price(&h, &LpipConfig::default());

        // Both succinct classes lose a constant fraction at t=3 already; the
        // asymptotic statement is Ω(t). With t=3, OPT = 4·27 = 108 while
        // bundle/item pricing stay near 3^t·Θ(1).
        assert!(
            ubp.revenue < 0.8 * opt,
            "UBP {} vs OPT {}",
            ubp.revenue,
            opt
        );
        assert!(
            uip.revenue < 0.8 * opt,
            "UIP {} vs OPT {}",
            uip.revenue,
            opt
        );
        assert!(
            lpip.revenue < 0.95 * opt,
            "LPIP {} vs OPT {}",
            lpip.revenue,
            opt
        );
    }

    #[test]
    fn construction_sizes_match_the_paper() {
        let h = laminar_family(2); // n = 4 items
                                   // Depth 0: 1 set × 9 copies; depth 1: 2 × 6; depth 2: 4 × 4 = 16.
        assert_eq!(h.num_items(), 4);
        assert_eq!(h.num_edges(), 9 + 12 + 16);

        let h = harmonic_singletons(10);
        assert_eq!(h.num_edges(), 10);
        assert_eq!(h.num_items(), 10);

        let h = partition_classes(6);
        // classes: 6 + 3 + 2 + 2 + 2 + 1 = 16 edges
        assert_eq!(h.num_edges(), 16);
    }
}
