//! Revenue accounting.
//!
//! In the unlimited-supply, single-minded setting the revenue of a pricing
//! function `p` on hypergraph `H` is `R(p) = Σ_{e : p(e) ≤ v_e} p(e)`
//! (paper §3.3): buyer `e` purchases iff the price of their bundle does not
//! exceed their valuation, and pays exactly the price.

use crate::{BundlePricing, Hypergraph};

/// Tolerance used when comparing a price against a valuation. LP-produced
/// prices frequently land exactly on a valuation; without a tolerance,
/// rounding would randomly drop those sales.
pub const SALE_EPS: f64 = 1e-7;

/// Revenue of `pricing` on `h`.
pub fn revenue(h: &Hypergraph, pricing: &dyn BundlePricing) -> f64 {
    h.edges()
        .iter()
        .map(|e| {
            let p = pricing.price_set(&e.items);
            if p <= e.valuation + SALE_EPS {
                p.min(e.valuation)
            } else {
                0.0
            }
        })
        .sum()
}

/// Indices of the edges sold by `pricing` on `h`.
pub fn sold_edges(h: &Hypergraph, pricing: &dyn BundlePricing) -> Vec<usize> {
    h.edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| pricing.price_set(&e.items) <= e.valuation + SALE_EPS)
        .map(|(i, _)| i)
        .collect()
}

/// Revenue of an item pricing given directly as a weight vector (avoids
/// constructing a `Pricing` value in inner loops).
pub fn item_pricing_revenue(h: &Hypergraph, weights: &[f64]) -> f64 {
    h.edges()
        .iter()
        .map(|e| {
            let p: f64 = e
                .items
                .iter()
                .map(|j| weights.get(j).copied().unwrap_or(0.0))
                .sum();
            if p <= e.valuation + SALE_EPS {
                p.min(e.valuation)
            } else {
                0.0
            }
        })
        .sum()
}

/// Revenue achieved by selling every edge at the fixed bundle price `p`.
pub fn uniform_bundle_revenue(h: &Hypergraph, p: f64) -> f64 {
    h.edges()
        .iter()
        .filter(|e| p <= e.valuation + SALE_EPS)
        .map(|e| p.min(e.valuation))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pricing;

    fn h() -> Hypergraph {
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0], 10.0);
        h.add_edge(vec![0, 1], 4.0);
        h.add_edge(vec![2], 6.0);
        h
    }

    #[test]
    fn uniform_bundle_revenue_counts_only_affordable_buyers() {
        let h = h();
        assert_eq!(uniform_bundle_revenue(&h, 5.0), 10.0); // edges 0 and 2
        assert_eq!(uniform_bundle_revenue(&h, 4.0), 12.0); // all three
        assert_eq!(uniform_bundle_revenue(&h, 11.0), 0.0);
        let p = Pricing::UniformBundle { price: 5.0 };
        assert_eq!(revenue(&h, &p), 10.0);
        assert_eq!(sold_edges(&h, &p), vec![0, 2]);
    }

    #[test]
    fn item_pricing_revenue_matches_trait_path() {
        let h = h();
        let w = vec![3.0, 2.0, 6.0];
        let fast = item_pricing_revenue(&h, &w);
        let slow = revenue(&h, &Pricing::Item { weights: w.clone() });
        assert!((fast - slow).abs() < 1e-12);
        // Edge 0 pays 3, edge 1 pays 5 > 4 (not sold), edge 2 pays 6.
        assert_eq!(fast, 9.0);
    }

    #[test]
    fn prices_exactly_at_valuation_still_sell() {
        let mut h = Hypergraph::new(1);
        h.add_edge(vec![0], 5.0);
        let w = vec![5.0];
        assert_eq!(item_pricing_revenue(&h, &w), 5.0);
    }

    #[test]
    fn revenue_never_exceeds_sum_of_valuations() {
        let h = h();
        for price in [0.5, 1.0, 3.0, 7.0, 20.0] {
            assert!(uniform_bundle_revenue(&h, price) <= h.total_valuation() + 1e-9);
        }
    }

    #[test]
    fn empty_bundles_price_at_zero_under_item_pricing() {
        let mut h = Hypergraph::new(2);
        h.add_edge(Vec::<usize>::new(), 3.0);
        h.add_edge(vec![1], 2.0);
        let w = vec![9.0, 2.0];
        // The empty bundle is "sold" for 0 revenue; the other pays 2.
        assert_eq!(item_pricing_revenue(&h, &w), 2.0);
        assert_eq!(sold_edges(&h, &Pricing::Item { weights: w }), vec![0, 1]);
    }
}
