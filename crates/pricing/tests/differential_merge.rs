//! Differential tests: the galloping struct-of-arrays
//! [`RateTable::merge_batch`] against the scalar
//! [`reference::merge_rates`] walk (the pre-optimization implementation,
//! kept verbatim) — on valid deltas the merged multisets must be
//! identical, and on *invalid* deltas (removing rates the base never
//! tracked) the two must agree on panicking, since the desync assert is
//! part of the contract.
//!
//! Deltas are built from an explicit bundle multiset — base entries
//! aggregate a list of `(rate key, size)` bundles, removals sample from
//! that list — so validity is by construction, and the key universe is
//! kept small to force collisions (several bundles per rate, several
//! delta entries per key, annihilated entries).

use proptest::prelude::*;
use qp_pricing::algorithms::{reference, RateTable};

/// A bundle multiset: keys from a tiny universe (collisions guaranteed),
/// sizes ≥ 1.
fn bundles() -> impl Strategy<Value = Vec<(u64, usize)>> {
    proptest::collection::vec((0u64..24, 1usize..16), 0..60)
}

/// Aggregates a bundle multiset into sorted reference entries.
fn aggregate(bundles: &[(u64, usize)]) -> Vec<(u64, reference::RateEntry)> {
    let mut sorted = bundles.to_vec();
    sorted.sort_unstable_by_key(|e| e.0);
    let mut out: Vec<(u64, reference::RateEntry)> = Vec::new();
    for &(k, size) in &sorted {
        match out.last_mut() {
            Some((last, e)) if *last == k => {
                e.count += 1;
                e.sizes += size;
            }
            _ => out.push((
                k,
                reference::RateEntry {
                    count: 1,
                    sizes: size,
                },
            )),
        }
    }
    out
}

fn sorted(mut v: Vec<(u64, usize)>) -> Vec<(u64, usize)> {
    v.sort_unstable_by_key(|e| e.0);
    v
}

/// Keeps the expected desync panics (hundreds per proptest run) out of the
/// test output while leaving every other panic's diagnostics intact.
fn silence_desync_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("incremental repricer out of sync"));
            if !expected {
                previous(info);
            }
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn batch_merge_matches_the_reference_walk_on_valid_deltas(
        base_bundles in bundles(),
        ins in bundles(),
        rem_picks in proptest::collection::vec(0usize..1024, 0..20),
    ) {
        let base = aggregate(&base_bundles);
        let ins = sorted(ins);
        // Removals sample the live bundle multiset without replacement, so
        // the delta is valid by construction.
        let mut live = base_bundles.clone();
        let mut rem = Vec::new();
        for pick in rem_picks {
            if live.is_empty() {
                break;
            }
            rem.push(live.swap_remove(pick % live.len()));
        }
        let rem = sorted(rem);

        let expected = reference::merge_rates(&base, &ins, &rem);
        let table = reference::table_from_entries(&base);
        let mut out = RateTable::new();
        table.merge_batch(&ins, &rem, &mut out);
        prop_assert_eq!(reference::entries_from_table(&out), expected);

        // Buffer reuse must not leak previous contents: merge again into
        // the same `out` with a different delta.
        table.merge_batch(&ins, &[], &mut out);
        prop_assert_eq!(
            reference::entries_from_table(&out),
            reference::merge_rates(&base, &ins, &[])
        );
    }

    #[test]
    fn batch_merge_agrees_with_the_reference_on_desync_panics(
        base_bundles in bundles(),
        ins in bundles(),
        rem in bundles(),
    ) {
        // Unconstrained removals: often invalid. Both implementations must
        // agree — same merged result, or both panic with the desync
        // message.
        silence_desync_panics();
        let base = aggregate(&base_bundles);
        let ins = sorted(ins);
        let rem = sorted(rem);
        let table = reference::table_from_entries(&base);
        let reference_run = std::panic::catch_unwind(|| {
            reference::merge_rates(&base, &ins, &rem)
        });
        let batch_run = std::panic::catch_unwind(|| {
            let mut out = RateTable::new();
            table.merge_batch(&ins, &rem, &mut out);
            reference::entries_from_table(&out)
        });
        match (reference_run, batch_run) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "paths disagree on validity: reference {:?}, batch {:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}
