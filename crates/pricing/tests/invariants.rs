//! Cross-algorithm invariant suite over the full six-algorithm registry.
//!
//! On random hypergraphs, for every registered algorithm:
//!
//! * every price it quotes — on the hyperedges *and* on arbitrary random
//!   bundles — is non-negative and finite, and so is every parameter of the
//!   returned pricing function;
//! * UBP upper-bounds every other algorithm's revenue **up to the harmonic
//!   factor `H_m`** (Lemma 1: UBP ≥ Σv / H_m, and nothing exceeds Σv, so
//!   `other ≤ UBP · H_m`). The unit test below documents why the pointwise
//!   claim "UBP ≥ everything" would be false;
//! * bundle prices are monotone under subset for random bundle pairs on
//!   ground sets larger than the exhaustive `is_monotone` checker handles
//!   (every registered class — uniform-bundle, item, XOS — claims
//!   monotonicity).
//!
//! Case counts follow `ProptestConfig::default()`, so CI elevates the suite
//! with `PROPTEST_CASES=256`.

use proptest::prelude::*;
use qp_pricing::algorithms::{self, lp_item_price, uniform_bundle_price, LpipConfig};
use qp_pricing::{BundlePricing, Hypergraph, Pricing};

const MAX_ITEMS: usize = 24;

#[derive(Debug, Clone)]
struct Instance {
    num_items: usize,
    edges: Vec<(Vec<usize>, f64)>,
    /// Seeds for random bundle pairs, resolved against `num_items`.
    probes: Vec<(Vec<usize>, Vec<usize>)>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..=MAX_ITEMS).prop_flat_map(|n| {
        let edge = (
            proptest::collection::vec(0usize..n, 0..=n.min(6)),
            0.0f64..50.0,
        );
        let probe = (
            proptest::collection::vec(0usize..n, 0..=n),
            proptest::collection::vec(0usize..n, 0..=4),
        );
        (
            proptest::collection::vec(edge, 1..12),
            proptest::collection::vec(probe, 1..6),
        )
            .prop_map(move |(edges, probes)| Instance {
                num_items: n,
                edges,
                probes,
            })
    })
}

fn build(inst: &Instance) -> Hypergraph {
    let mut h = Hypergraph::new(inst.num_items);
    for (items, v) in &inst.edges {
        h.add_edge(items.clone(), *v);
    }
    h
}

fn params_of(p: &Pricing) -> Vec<f64> {
    match p {
        Pricing::UniformBundle { price } => vec![*price],
        Pricing::Item { weights } => weights.clone(),
        Pricing::Xos { components } => components.iter().flatten().copied().collect(),
    }
}

/// The m-th harmonic number `H_m = Σ_{i=1..m} 1/i`.
fn harmonic(m: usize) -> f64 {
    (1..=m).map(|i| 1.0 / i as f64).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Non-negative, finite prices and parameters across the whole roster.
    #[test]
    fn all_prices_are_nonnegative_and_finite(inst in instance_strategy()) {
        let h = build(&inst);
        for algo in algorithms::all() {
            let out = algo.run(&h);
            prop_assert!(out.revenue.is_finite() && out.revenue >= -1e-9,
                "{}: bad revenue {}", algo.name(), out.revenue);
            for w in params_of(&out.pricing) {
                prop_assert!(w.is_finite() && w >= 0.0,
                    "{}: bad pricing parameter {w}", algo.name());
            }
            for e in h.edges() {
                let p = out.pricing.price_set(&e.items);
                prop_assert!(p.is_finite() && p >= 0.0,
                    "{}: bad edge price {p}", algo.name());
            }
            for (a, _) in &inst.probes {
                let p = out.pricing.price(a);
                prop_assert!(p.is_finite() && p >= 0.0,
                    "{}: bad probe price {p}", algo.name());
            }
        }
    }

    /// Lemma 1 turned into a roster-wide upper bound: UBP · H_m dominates
    /// every algorithm's revenue (UBP ≥ Σv / H_m and revenue ≤ Σv).
    #[test]
    fn ubp_upper_bounds_the_roster_up_to_the_harmonic_factor(inst in instance_strategy()) {
        let h = build(&inst);
        let ubp = uniform_bundle_price(&h);
        let bound = ubp.revenue * harmonic(h.num_edges());
        for algo in algorithms::all() {
            let out = algo.run(&h);
            prop_assert!(
                out.revenue <= bound + 1e-6,
                "{} revenue {} exceeds UBP {} x H_{} = {}",
                algo.name(), out.revenue, ubp.revenue, h.num_edges(), bound
            );
        }
    }

    /// Subset-monotonicity on random bundle pairs, beyond the n ≤ 8
    /// exhaustive checker: price(A) ≤ price(A ∪ B) for every roster pricing
    /// (all three registered classes claim monotonicity).
    #[test]
    fn bundle_prices_are_monotone_under_subset(inst in instance_strategy()) {
        let h = build(&inst);
        for algo in algorithms::all() {
            let out = algo.run(&h);
            for (a, extra) in &inst.probes {
                let mut b = a.clone();
                b.extend_from_slice(extra);
                prop_assert!(
                    out.pricing.price(a) <= out.pricing.price(&b) + 1e-9,
                    "{}: price({a:?}) > price({b:?})", algo.name()
                );
            }
        }
    }
}

/// Why the invariant above carries the `H_m` factor: UBP is only optimal
/// among *uniform bundle* prices, and item pricing can extract strictly
/// more. On {0} at 8, {1} at 12, {0,1} at 5: any uniform price P earns at
/// most 16 (P = 8), while per-item weights (8, 12) earn 20.
#[test]
fn ubp_does_not_dominate_item_pricing_pointwise() {
    let mut h = Hypergraph::new(2);
    h.add_edge(vec![0], 8.0);
    h.add_edge(vec![1], 12.0);
    h.add_edge(vec![0, 1], 5.0);
    let ubp = uniform_bundle_price(&h);
    let lpip = lp_item_price(&h, &LpipConfig::default());
    assert!(
        lpip.revenue > ubp.revenue + 1.0,
        "LPIP {} should strictly beat UBP {} here",
        lpip.revenue,
        ubp.revenue
    );
    // …which is exactly why the proptest checks UBP · H_m instead.
    assert!(lpip.revenue <= ubp.revenue * harmonic(h.num_edges()) + 1e-9);
}
