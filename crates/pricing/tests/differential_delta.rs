//! The differential oracle suite — the incremental-delta pipeline checked
//! against from-scratch rebuilds.
//!
//! Random delta sequences (add / remove / revalue, applied both op-by-op
//! and in batches) drive an incrementally-maintained [`Hypergraph`] while a
//! plain mirror model tracks the same edits with the documented
//! swap-removal semantics. After **every step**:
//!
//! * the incrementally-patched [`ItemIndex`] must equal (`==`) the index a
//!   from-scratch rebuild of the mirror computes — degrees, max degree,
//!   active items, adjacency lists, unique-item flags, all of it;
//! * the exact incremental repricers (UBP, UIP) must return a [`Pricing`]
//!   **identical** to a full algorithm run on the updated hypergraph, with
//!   bit-identical revenue;
//! * the XOS incremental rule (envelope reuse — documented as not exact)
//!   must still report exactly the revenue its envelope earns on the
//!   updated demand.
//!
//! Case counts follow `ProptestConfig::default()`, so CI elevates the suite
//! with `PROPTEST_CASES=256`.

use proptest::prelude::*;
use qp_pricing::algorithms::{
    uniform_bundle_price, uniform_item_price, CipConfig, IncrementalRepricer, LpipConfig,
    UbpIncremental, UipIncremental, XosIncremental,
};
use qp_pricing::{revenue, Hypergraph, HypergraphDelta, ItemSet};

const MAX_ITEMS: usize = 10;

/// A scripted mutation; indices are resolved against the live edge count at
/// application time (so scripts stay valid whatever the graph size is).
#[derive(Debug, Clone)]
enum ScriptOp {
    Add { items: Vec<usize>, valuation: f64 },
    Remove { slot_seed: usize },
    Revalue { slot_seed: usize, valuation: f64 },
}

#[derive(Debug, Clone)]
struct Script {
    initial: Vec<(Vec<usize>, f64)>,
    ops: Vec<ScriptOp>,
    /// Ops per applied batch (1 = op-by-op differential stepping).
    batch: usize,
}

fn op_strategy() -> impl Strategy<Value = ScriptOp> {
    (
        0usize..3,
        proptest::collection::vec(0usize..MAX_ITEMS, 0..=5),
        0usize..1usize << 16,
        0.0f64..25.0,
    )
        .prop_map(|(kind, items, slot_seed, valuation)| match kind {
            0 => ScriptOp::Add { items, valuation },
            1 => ScriptOp::Remove { slot_seed },
            _ => ScriptOp::Revalue {
                slot_seed,
                valuation,
            },
        })
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (
        proptest::collection::vec(
            (
                proptest::collection::vec(0usize..MAX_ITEMS, 0..=4),
                0.0f64..25.0,
            ),
            0..6,
        ),
        proptest::collection::vec(op_strategy(), 1..24),
        1usize..4,
    )
        .prop_map(|(initial, ops, batch)| Script {
            initial,
            ops,
            batch,
        })
}

/// The plain mirror: a `Vec` of edges mutated with the same swap-removal
/// semantics the hypergraph documents. Rebuilding a fresh hypergraph from
/// it is the from-scratch oracle.
#[derive(Default)]
struct Mirror {
    edges: Vec<(ItemSet, f64)>,
}

impl Mirror {
    fn rebuild(&self, num_items: usize) -> Hypergraph {
        let mut h = Hypergraph::new(num_items);
        for (items, v) in &self.edges {
            h.add_edge_set(items.clone(), *v);
        }
        h
    }
}

/// Turns a script op into a concrete delta op against the current size,
/// mirroring it. Returns false when the op is a no-op (nothing to remove).
fn stage(op: &ScriptOp, mirror: &mut Mirror, delta: &mut HypergraphDelta) -> bool {
    match op {
        ScriptOp::Add { items, valuation } => {
            let set: ItemSet = items.iter().copied().collect();
            mirror.edges.push((set.clone(), *valuation));
            delta.add_edge(set, *valuation);
            true
        }
        ScriptOp::Remove { slot_seed } => {
            if mirror.edges.is_empty() {
                return false;
            }
            let slot = slot_seed % mirror.edges.len();
            mirror.edges.swap_remove(slot);
            delta.remove_edge(slot);
            true
        }
        ScriptOp::Revalue {
            slot_seed,
            valuation,
        } => {
            if mirror.edges.is_empty() {
                return false;
            }
            let slot = slot_seed % mirror.edges.len();
            mirror.edges[slot].1 = *valuation;
            delta.revalue_edge(slot, *valuation);
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// The incrementally-maintained `ItemIndex` equals a from-scratch
    /// rebuild after every applied batch, and so does the edge list itself.
    #[test]
    fn incremental_index_equals_rebuild_after_every_step(script in script_strategy()) {
        let mut mirror = Mirror::default();
        let mut h = Hypergraph::new(MAX_ITEMS);
        for (items, v) in &script.initial {
            let set: ItemSet = items.iter().copied().collect();
            mirror.edges.push((set.clone(), *v));
            h.add_edge_set(set, *v);
        }
        h.item_index(); // build once; every mutation from here on patches

        for chunk in script.ops.chunks(script.batch) {
            let mut delta = HypergraphDelta::new();
            for op in chunk {
                stage(op, &mut mirror, &mut delta);
            }
            h.apply_delta(delta);

            let oracle = mirror.rebuild(MAX_ITEMS);
            prop_assert_eq!(h.num_edges(), oracle.num_edges());
            for (e, (items, v)) in h.edges().iter().zip(&mirror.edges) {
                prop_assert_eq!(&e.items, items);
                prop_assert_eq!(e.valuation.to_bits(), v.to_bits());
            }
            prop_assert_eq!(h.item_index(), oracle.item_index(),
                "patched index diverged from a from-scratch rebuild");
            // The scalar views go through the same index; spot-check them.
            prop_assert_eq!(h.max_degree(), oracle.max_degree());
            prop_assert_eq!(h.item_degrees(), oracle.item_degrees());
            prop_assert_eq!(h.active_items(), oracle.active_items());
            prop_assert_eq!(h.edges_with_unique_item(), oracle.edges_with_unique_item());
            for j in 0..MAX_ITEMS {
                prop_assert_eq!(h.edges_containing(j), oracle.edges_containing(j));
            }
        }
    }

    /// UBP and UIP incremental repricers return pricings identical to full
    /// reruns — bit-for-bit, including the reported revenue — after every
    /// applied batch.
    #[test]
    fn exact_incremental_pricings_equal_full_reruns(script in script_strategy()) {
        let mut mirror = Mirror::default();
        let mut h = Hypergraph::new(MAX_ITEMS);
        for (items, v) in &script.initial {
            let set: ItemSet = items.iter().copied().collect();
            mirror.edges.push((set.clone(), *v));
            h.add_edge_set(set, *v);
        }

        let mut ubp = UbpIncremental::new();
        let mut uip = UipIncremental::new();
        let primed_ubp = ubp.prime(&h);
        let primed_uip = uip.prime(&h);
        prop_assert_eq!(primed_ubp.pricing, uniform_bundle_price(&h).pricing);
        prop_assert_eq!(primed_uip.pricing, uniform_item_price(&h).pricing);

        for chunk in script.ops.chunks(script.batch) {
            let mut delta = HypergraphDelta::new();
            for op in chunk {
                stage(op, &mut mirror, &mut delta);
            }
            let ops = h.apply_delta(delta);

            let (ubp_out, _) = ubp.apply(&h, &ops);
            let ubp_full = uniform_bundle_price(&h);
            prop_assert_eq!(&ubp_out.pricing, &ubp_full.pricing,
                "UBP incremental pricing diverged from the full rerun");
            prop_assert_eq!(ubp_out.revenue.to_bits(), ubp_full.revenue.to_bits());

            let (uip_out, _) = uip.apply(&h, &ops);
            let uip_full = uniform_item_price(&h);
            prop_assert_eq!(&uip_out.pricing, &uip_full.pricing,
                "UIP incremental pricing diverged from the full rerun");
            prop_assert_eq!(uip_out.revenue.to_bits(), uip_full.revenue.to_bits());

            // And a from-scratch graph (same edge order) agrees too.
            let oracle = mirror.rebuild(MAX_ITEMS);
            prop_assert_eq!(uniform_bundle_price(&oracle).pricing, ubp_out.pricing);
            prop_assert_eq!(uniform_item_price(&oracle).pricing, uip_out.pricing);
        }
    }

    /// The XOS incremental rule reuses its envelope (documented as not
    /// exact) but must report exactly the revenue that envelope earns on
    /// the updated demand, after every batch.
    #[test]
    fn xos_envelope_reuse_reports_true_revenue(script in script_strategy()) {
        let mut mirror = Mirror::default();
        let mut h = Hypergraph::new(MAX_ITEMS);
        for (items, v) in &script.initial {
            let set: ItemSet = items.iter().copied().collect();
            mirror.edges.push((set.clone(), *v));
            h.add_edge_set(set, *v);
        }

        // Refits are covered by unit tests; pinning the envelope here keeps
        // the reuse invariant assertable after every single batch.
        let mut xos = XosIncremental::new(LpipConfig::default(), CipConfig::default())
            .with_refit_after(f64::INFINITY);
        prop_assert!(!xos.exact());
        let primed = xos.prime(&h);
        let envelope = primed.pricing;

        for chunk in script.ops.chunks(script.batch) {
            let mut delta = HypergraphDelta::new();
            for op in chunk {
                stage(op, &mut mirror, &mut delta);
            }
            let ops = h.apply_delta(delta);
            let (out, _) = xos.apply(&h, &ops);
            prop_assert_eq!(&out.pricing, &envelope, "the envelope must be reused as-is");
            prop_assert_eq!(
                out.revenue.to_bits(),
                revenue::revenue(&h, &out.pricing).to_bits()
            );
        }
    }
}
