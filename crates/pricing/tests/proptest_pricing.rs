//! Property-based tests across all pricing algorithms.
//!
//! Invariants checked on random hypergraphs:
//! * every algorithm's reported revenue equals the revenue of the pricing
//!   function it returns;
//! * no algorithm exceeds the sum of valuations;
//! * every returned pricing function is monotone and subadditive (i.e.
//!   arbitrage-free by Theorem 1), verified exhaustively on small ground sets;
//! * documented dominance relations hold (LPIP ≥ UIP, refinement ≥ UBP,
//!   Layering ≥ (1/B)·Σv).

use proptest::prelude::*;
use qp_pricing::algorithms::{
    self, capacity_item_price, layering, lp_item_price, refine_uniform_bundle_price,
    uniform_bundle_price, uniform_item_price, xos_pricing, CipConfig, LpipConfig,
};
use qp_pricing::{bounds, is_monotone, is_subadditive, revenue, Hypergraph};

/// Random hypergraph over at most 8 items and at most 10 edges with
/// valuations in (0, 20].
#[derive(Debug, Clone)]
struct RandomInstance {
    num_items: usize,
    edges: Vec<(Vec<usize>, f64)>,
}

fn instance_strategy() -> impl Strategy<Value = RandomInstance> {
    (2usize..=8).prop_flat_map(|n| {
        let edge = (
            proptest::collection::vec(0usize..n, 0..=n.min(5)),
            0.01f64..20.0,
        );
        proptest::collection::vec(edge, 1..10).prop_map(move |edges| RandomInstance {
            num_items: n,
            edges,
        })
    })
}

fn build(inst: &RandomInstance) -> Hypergraph {
    let mut h = Hypergraph::new(inst.num_items);
    for (items, v) in &inst.edges {
        h.add_edge(items.clone(), *v);
    }
    h
}

fn all_outcomes(h: &Hypergraph) -> Vec<qp_pricing::PricingOutcome> {
    vec![
        uniform_bundle_price(h),
        uniform_item_price(h),
        lp_item_price(h, &LpipConfig::default()),
        capacity_item_price(
            h,
            &CipConfig {
                epsilon: 1.0,
                max_lp_iterations: 100_000,
            },
        ),
        layering(h),
        xos_pricing(
            h,
            &LpipConfig::default(),
            &CipConfig {
                epsilon: 1.0,
                max_lp_iterations: 100_000,
            },
        ),
        refine_uniform_bundle_price(h),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reported_revenue_matches_returned_pricing(inst in instance_strategy()) {
        let h = build(&inst);
        for out in all_outcomes(&h) {
            let recomputed = revenue::revenue(&h, &out.pricing);
            prop_assert!(
                (recomputed - out.revenue).abs() < 1e-6,
                "{}: reported {} but pricing earns {}",
                out.algorithm, out.revenue, recomputed
            );
        }
    }

    #[test]
    fn revenue_is_within_global_bounds(inst in instance_strategy()) {
        let h = build(&inst);
        let sum = bounds::sum_of_valuations(&h);
        for out in all_outcomes(&h) {
            prop_assert!(out.revenue >= -1e-9, "{} negative revenue", out.algorithm);
            prop_assert!(
                out.revenue <= sum + 1e-6,
                "{} exceeds the sum of valuations", out.algorithm
            );
        }
    }

    #[test]
    fn returned_pricings_are_arbitrage_free(inst in instance_strategy()) {
        let h = build(&inst);
        for out in all_outcomes(&h) {
            prop_assert!(
                is_monotone(&out.pricing, h.num_items().min(8)),
                "{} returned a non-monotone pricing", out.algorithm
            );
            prop_assert!(
                is_subadditive(&out.pricing, h.num_items().min(8)),
                "{} returned a non-subadditive pricing", out.algorithm
            );
        }
    }

    #[test]
    fn lpip_dominates_uip(inst in instance_strategy()) {
        let h = build(&inst);
        let uip = uniform_item_price(&h);
        let lpip = lp_item_price(&h, &LpipConfig::default());
        prop_assert!(lpip.revenue + 1e-6 >= uip.revenue,
            "LPIP {} must dominate UIP {}", lpip.revenue, uip.revenue);
    }

    #[test]
    fn refinement_dominates_ubp(inst in instance_strategy()) {
        let h = build(&inst);
        let ubp = uniform_bundle_price(&h);
        let refined = refine_uniform_bundle_price(&h);
        prop_assert!(refined.revenue + 1e-6 >= ubp.revenue);
    }

    #[test]
    fn layering_meets_its_approximation_guarantee(inst in instance_strategy()) {
        let h = build(&inst);
        let non_empty_value: f64 = h
            .edges()
            .iter()
            .filter(|e| !e.items.is_empty())
            .map(|e| e.valuation)
            .sum();
        if non_empty_value > 0.0 {
            let b = h.max_degree().max(1) as f64;
            let out = layering(&h);
            prop_assert!(
                out.revenue + 1e-6 >= non_empty_value / b,
                "layering {} below guarantee {}", out.revenue, non_empty_value / b
            );
        }
    }

    #[test]
    fn ubp_is_optimal_among_uniform_prices(inst in instance_strategy()) {
        let h = build(&inst);
        let out = uniform_bundle_price(&h);
        for e in h.edges() {
            let rev = revenue::uniform_bundle_revenue(&h, e.valuation);
            prop_assert!(out.revenue + 1e-9 >= rev);
        }
    }

    #[test]
    fn subadditive_bound_is_at_most_sum(inst in instance_strategy()) {
        let h = build(&inst);
        let bound = bounds::subadditive_bound(&h, &Default::default());
        prop_assert!(bound <= bounds::sum_of_valuations(&h) + 1e-6);
        prop_assert!(bound >= -1e-9);
    }

    #[test]
    fn registry_algorithms_are_arbitrage_free_and_report_true_revenue(
        inst in instance_strategy()
    ) {
        // The registry invariant of the redesigned API: every algorithm in
        // `algorithms::all()` returns a pricing that is monotone and
        // subadditive (arbitrage-free per Theorem 1 — every registered class
        // guarantees both), with a `revenue` field that matches what the
        // returned pricing actually earns on the input.
        let h = build(&inst);
        let n = h.num_items().min(8);
        for algo in algorithms::all() {
            let out = algo.run(&h);
            prop_assert!(
                (revenue::revenue(&h, &out.pricing) - out.revenue).abs() < 1e-6,
                "{} mis-reported its own revenue", algo.name()
            );
            prop_assert!(
                is_monotone(&out.pricing, n),
                "{} returned a non-monotone pricing", algo.name()
            );
            prop_assert!(
                is_subadditive(&out.pricing, n),
                "{} returned a non-subadditive pricing", algo.name()
            );
        }
    }

    #[test]
    fn by_name_resolves_to_the_same_outcome_as_the_roster(inst in instance_strategy()) {
        let h = build(&inst);
        for algo in algorithms::all() {
            let resolved = algorithms::by_name(algo.name()).expect("roster name resolves");
            prop_assert_eq!(resolved.name(), algo.name());
            let a = algo.run(&h);
            let b = resolved.run(&h);
            prop_assert!(
                (a.revenue - b.revenue).abs() < 1e-9,
                "{}: roster and by_name outcomes diverge", algo.name()
            );
        }
    }
}
