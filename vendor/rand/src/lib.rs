//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no network access, so this workspace vendors the
//! small slice of `rand` it actually uses: a seedable deterministic generator
//! (`rngs::StdRng`), the `Rng` extension trait with `gen`, `gen_range`, and
//! `gen_bool`, and `SeedableRng::seed_from_u64`. The generator is
//! xoshiro256++, which is more than adequate for workload synthesis and
//! property tests; it makes no cryptographic claims whatsoever.
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across runs and platforms, which the workload generators and support-set
//! samplers rely on.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range, the subset of `rand::distributions::uniform`
/// this workspace needs.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws a value from the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Widen through i128 so narrow signed ranges (e.g. -100i8..100,
                // whose width overflows i8) compute their true span instead of
                // sign-extending a wrapped difference.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    // Only reachable for 64-bit types covering the full domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_ranges!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniformly distributed in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // Avoid the all-zero state, which is a fixed point of xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn narrow_signed_ranges_whose_width_overflows_the_type() {
        // -100i8..100 has width 200 > i8::MAX; a naive wrapping_sub would
        // sign-extend and produce out-of-range values.
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..2000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "{v} escaped -100i8..100");
            seen_neg |= v < 0;
            seen_pos |= v > 0;
            let w = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = w; // full-domain inclusive range must not panic
        }
        assert!(seen_neg && seen_pos, "suspiciously one-sided sampling");
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut heads = 0;
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((600..1400).contains(&heads), "suspiciously biased: {heads}");
    }
}
