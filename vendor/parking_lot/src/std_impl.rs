//! The default (non-instrumented) facade implementation: `std::sync`
//! primitives behind parking_lot's poison-free API. See the crate docs for
//! the `cfg(qp_verify)` switch that swaps this layer out.

use std::sync::{self, TryLockError};

/// Guard types re-exported so signatures can name them.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard of [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard of [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
