//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a thread panicked while holding it) is
//! recovered transparently — parking_lot has no poisoning, so neither does
//! this shim. Performance characteristics are std's, not parking_lot's,
//! which is irrelevant at this workspace's scales.
//!
//! # The `qp_verify` switch
//!
//! Built with `RUSTFLAGS="--cfg qp_verify"`, this facade re-exports the
//! instrumented shims from the `qp-verify` model checker instead of the
//! std-backed types. Workspace code is written against this facade (plus
//! its [`atomic`] module), so the *same* production source can run under
//! deterministic-interleaving exploration without modification. Outside a
//! model run the shims delegate to `std`, so instrumented builds still
//! behave normally (ordinary tests keep passing).

#[cfg(not(qp_verify))]
mod std_impl;

#[cfg(not(qp_verify))]
pub use std_impl::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(qp_verify)]
pub use qp_verify::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomics facade: the workspace imports its atomics from here instead of
/// `std::sync::atomic`, so an instrumented build can interpose scheduler
/// yield points on every atomic access. `Ordering` is always std's —
/// the shims take the same memory-ordering arguments.
pub mod atomic {
    #[cfg(qp_verify)]
    pub use qp_verify::sync::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
    #[cfg(not(qp_verify))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn atomic_facade_round_trip() {
        use atomic::{AtomicBool, AtomicU64, Ordering};
        let a = AtomicU64::new(3);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 3);
        assert_eq!(a.load(Ordering::SeqCst), 5);
        let b = AtomicBool::new(false);
        b.store(true, Ordering::SeqCst);
        assert!(b.load(Ordering::SeqCst));
    }
}
