//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//!
//! * range strategies over the primitive numeric types,
//! * tuple strategies up to arity 6,
//! * [`collection::vec`] with exact, `Range`, or `RangeInclusive` sizes,
//! * the [`Strategy::prop_map`] / [`Strategy::prop_flat_map`] combinators,
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`, and
//! * the `PROPTEST_CASES` environment variable, honored by
//!   [`ProptestConfig::default`] (explicit `with_cases(n)` stays pinned —
//!   the same split real proptest makes).
//!
//! Semantics differ from real proptest in two deliberate ways: generation
//! is **deterministic** (each case draws from its own seed, derived from
//! the test function's name and the case index) and there is **no
//! shrinking** — a failing case panics with the generated values' `Debug`
//! representation instead of a minimized counterexample. Because every
//! case has its own seed, a failure is one-line reproducible: the panic
//! message prints `PROPTEST_SEED=0x…`, and setting that environment
//! variable re-runs exactly (and only) the failing case.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic generator handed to strategies.
pub type TestRng = StdRng;

/// FNV-1a hash of a test's name — the base every per-case seed mixes in.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64's finalizer: scrambles a counter into a well-mixed seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The seed of case number `case` (0-based) of the named test: a
/// splitmix64 mix of the test-name hash and the case index, so every case
/// of every test draws from an independent, individually re-runnable
/// stream.
pub fn case_seed(name: &str, case: u32) -> u64 {
    splitmix64(name_hash(name) ^ u64::from(case).wrapping_mul(0x9E3779B97F4A7C15))
}

/// The generator for one explicit seed (as printed by a failure message).
pub fn rng_for_seed(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// The seed forced via the `PROPTEST_SEED` environment variable (hex with
/// an optional `0x` prefix, or decimal), if set. When a seed is forced,
/// `proptest!` runs exactly one case from it — the one-line reproduction
/// path for a failure that printed its seed.
pub fn forced_seed() -> Option<u64> {
    let raw = std::env::var("PROPTEST_SEED").ok()?;
    let t = raw.trim();
    let (digits, radix) = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => (t, 10),
    };
    u64::from_str_radix(digits, radix).ok()
}

/// Seeds the per-test generator from the test's name (FNV-1a) so every test
/// function explores a different but reproducible stream. Retained for
/// direct use; `proptest!` itself seeds per *case* via [`case_seed`].
pub fn rng_for_test(name: &str) -> TestRng {
    StdRng::seed_from_u64(name_hash(name))
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, or the value of the `PROPTEST_CASES` environment variable
    /// when set (matching real proptest: the env var steers configs built
    /// from `default()`, while an explicit `with_cases(n)` stays pinned).
    /// CI elevates the differential/invariant suites through this hook.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of values of an associated type.
///
/// Unlike real proptest there is no value tree: a strategy simply samples a
/// fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API compatibility; rarely needed here).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically-typed strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy returning a fixed value every time (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Something usable as the size argument of [`vec()`].
    pub trait SizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// A strategy producing `Vec`s of values of `element`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates vectors whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)` body
/// is run for `cases` deterministic samples of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __name = concat!(module_path!(), "::", stringify!($name));
                let __forced = $crate::forced_seed();
                let __total = if __forced.is_some() { 1 } else { __config.cases };
                for __case in 0..__total {
                    let __seed = match __forced {
                        Some(seed) => seed,
                        None => $crate::case_seed(__name, __case),
                    };
                    let mut __rng = $crate::rng_for_seed(__seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __dbg = format!(
                        concat!("case {}/{} of ", stringify!($name), ":", $(" ", stringify!($arg), " = {:?}",)* ""),
                        __case + 1, __total $(, &$arg)*
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(err) = __result {
                        eprintln!(
                            "proptest failure in {} — re-run just this case with PROPTEST_SEED={:#018x}",
                            __dbg, __seed
                        );
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Pair {
        xs: Vec<usize>,
        bound: usize,
    }

    fn pair_strategy() -> impl Strategy<Value = Pair> {
        (1usize..10).prop_flat_map(|bound| {
            crate::collection::vec(0usize..bound, 0..=8).prop_map(move |xs| Pair { xs, bound })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn flat_mapped_bounds_hold(p in pair_strategy()) {
            prop_assert!(p.xs.iter().all(|&x| x < p.bound));
        }

        #[test]
        fn tuples_and_ranges(t in (0u8..4, -10i64..10, 0.5f64..=1.5)) {
            prop_assert!(t.0 < 4);
            prop_assert!((-10..10).contains(&t.1));
            prop_assert!((0.5..=1.5).contains(&t.2));
        }

        #[test]
        fn exact_size_vec(v in crate::collection::vec(0.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let s = pair_strategy();
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        assert_eq!(
            format!("{:?}", s.generate(&mut a)),
            format!("{:?}", s.generate(&mut b))
        );
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        assert_eq!(crate::case_seed("a::t", 0), crate::case_seed("a::t", 0));
        assert_ne!(crate::case_seed("a::t", 0), crate::case_seed("a::t", 1));
        assert_ne!(crate::case_seed("a::t", 0), crate::case_seed("b::t", 0));
        // A printed seed re-generates the failing case's exact values.
        let s = pair_strategy();
        let seed = crate::case_seed("a::t", 3);
        let one = format!("{:?}", s.generate(&mut crate::rng_for_seed(seed)));
        let two = format!("{:?}", s.generate(&mut crate::rng_for_seed(seed)));
        assert_eq!(one, two);
    }

    #[test]
    fn forced_seed_parses_hex_and_decimal() {
        // The only test in this binary touching the variable, so the
        // set/remove pair cannot race another reader.
        std::env::remove_var("PROPTEST_SEED");
        assert_eq!(crate::forced_seed(), None);
        std::env::set_var("PROPTEST_SEED", "0x00000000000000ff");
        assert_eq!(crate::forced_seed(), Some(255));
        std::env::set_var("PROPTEST_SEED", "255");
        assert_eq!(crate::forced_seed(), Some(255));
        std::env::set_var("PROPTEST_SEED", "not-a-seed");
        assert_eq!(crate::forced_seed(), None);
        std::env::remove_var("PROPTEST_SEED");
    }

    #[test]
    fn default_case_count_honors_proptest_cases() {
        // The only test in this binary touching the variable, so the
        // set/remove pair cannot race another reader.
        std::env::set_var("PROPTEST_CASES", "256");
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::default().cases, 64);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(ProptestConfig::default().cases, 64);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::default().cases, 64);
        // Explicit case counts stay pinned regardless of the environment.
        std::env::set_var("PROPTEST_CASES", "512");
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        std::env::remove_var("PROPTEST_CASES");
    }
}
