//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with
//! a deliberately simple measurement loop: each benchmark body runs
//! `iters_per_sample × samples` times and the per-iteration mean and minimum
//! are printed. There is no statistical analysis, warm-up, or HTML report;
//! the goal is that `cargo bench` runs, produces comparable numbers between
//! two checkouts on the same machine, and that bench targets stay compiling.
//!
//! Set `CRITERION_STUB_SAMPLES=1` (used by CI smoke runs) to execute every
//! benchmark body exactly once.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`, as in real criterion.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from a bare function name.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and min per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `f`, running it `samples` times.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some((total / self.samples as u32, min));
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_STUB_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some((mean, min)) => {
            println!("bench {label:<50} mean {mean:>12.2?}  min {min:>12.2?}  ({samples} samples)")
        }
        None => println!("bench {label:<50} (no measurement: iter was never called)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many times each benchmark body runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples(n.max(1));
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.samples,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: env_samples(10),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), env_samples(10), &mut f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags (e.g. --bench);
            // this stub ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_the_bodies() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("plain", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);

        let mut with_input = 0usize;
        let mut g = c.benchmark_group("g2");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &x| {
            b.iter(|| with_input += x)
        });
        g.finish();
        assert_eq!(with_input, 14);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
