//! Cross-crate integration tests: dataset → queries → support → conflict
//! sets → pricing → broker, exercised through the public facade.
//!
//! Pricing algorithms are driven through the `algorithms` registry
//! (`all` / `by_name`) and the broker through its builder + concurrent
//! engine API, mirroring how an embedding marketplace would consume the
//! library.

use query_pricing::market::{
    build_hypergraph, check_all, Broker, ConflictEngine, DeltaConflictEngine, PurchaseOutcome,
    SupportConfig, SupportSet,
};
use query_pricing::pricing::algorithms::{self, CipConfig, LpipConfig};
use query_pricing::pricing::{bounds, is_monotone, is_subadditive, revenue, Hypergraph, ItemSet};
use query_pricing::qdb::{AggFunc, Expr, Query};
use query_pricing::workloads::queries::{skewed, uniform};
use query_pricing::workloads::valuations::{assign_valuations, ValuationModel};
use query_pricing::workloads::world::{self, WorldConfig};
use query_pricing::workloads::Scale;

fn world_instance() -> (query_pricing::qdb::Database, SupportSet) {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let support = SupportSet::generate(&db, &SupportConfig::with_size(120));
    (db, support)
}

#[test]
fn skewed_workload_end_to_end_pricing() {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    let support = SupportSet::generate(&db, &SupportConfig::with_size(100));
    let engine = DeltaConflictEngine::new(&db, &support);
    // A slice of the workload keeps the test fast while covering every
    // template family (the first 34 are the base templates).
    let queries = &workload.queries[..80];
    let mut h = build_hypergraph(&engine, queries);
    assert_eq!(h.num_edges(), queries.len());

    assign_valuations(&mut h, &ValuationModel::SampledUniform { k: 100.0 }, 3);
    let sum = bounds::sum_of_valuations(&h);
    assert!(sum > 0.0);

    // The whole paper roster, through the registry.
    let lpip_cfg = LpipConfig {
        max_lps: Some(10),
        ..Default::default()
    };
    let cip_cfg = CipConfig {
        epsilon: 3.0,
        ..Default::default()
    };
    let mut lpip_revenue = None;
    let mut uip_revenue = None;
    for algo in algorithms::all_with(&lpip_cfg, &cip_cfg) {
        let out = algo.run(&h);
        assert!(
            out.revenue >= 0.0 && out.revenue <= sum + 1e-6,
            "{}",
            algo.name()
        );
        let recomputed = revenue::revenue(&h, &out.pricing);
        assert!((recomputed - out.revenue).abs() < 1e-6, "{}", algo.name());
        match algo.name() {
            "LPIP" => lpip_revenue = Some(out.revenue),
            "UIP" => uip_revenue = Some(out.revenue),
            _ => {}
        }
    }
    // The paper's headline finding at small scale: LPIP is at least as good
    // as UIP.
    assert!(lpip_revenue.unwrap() + 1e-6 >= uip_revenue.unwrap());
}

#[test]
fn conflict_engines_agree_on_the_base_templates() {
    let (db, support) = world_instance();
    let naive = query_pricing::market::NaiveConflictEngine::new(&db, &support);
    let fast = DeltaConflictEngine::new(&db, &support);
    for q in skewed::base_queries() {
        assert_eq!(naive.conflict_set(&q), fast.conflict_set(&q));
    }
}

#[test]
fn uniform_workload_has_uniform_edge_sizes() {
    let (db, support) = world_instance();
    let w = uniform::workload(&db, 40);
    let engine = DeltaConflictEngine::new(&db, &support);
    let h = build_hypergraph(&engine, &w.queries);
    let stats = h.stats();
    assert_eq!(stats.num_edges, 40);
    // Every edge selects ~40% of the City rows, so sizes are tightly
    // clustered: the spread should be well below the mean.
    let sizes: Vec<usize> = h.edges().iter().map(|e| e.size()).collect();
    let min = *sizes.iter().min().unwrap() as f64;
    let max = *sizes.iter().max().unwrap() as f64;
    assert!(min > 0.0);
    assert!(
        max - min <= stats.avg_edge_size,
        "sizes {min}..{max} too spread"
    );
}

#[test]
fn broker_quotes_are_arbitrage_free_across_algorithms() {
    let (db, support) = world_instance();
    let broker = Broker::with_support(db, support);
    let queries = vec![
        Query::scan("Country")
            .filter(Expr::col("Continent").eq(Expr::lit("Asia")))
            .aggregate(vec![], vec![(AggFunc::Count, Some("Name"), "c")]),
        Query::scan("Country").project_cols(&["Name", "Population"]),
        Query::scan("Country"),
        Query::scan("City").aggregate(vec!["CountryCode"], vec![(AggFunc::Count, None, "c")]),
    ];
    let conflict_sets: Vec<ItemSet> = queries.iter().map(|q| broker.conflict_set(q)).collect();
    let mut h = Hypergraph::new(broker.support().len());
    for cs in &conflict_sets {
        h.add_edge_set(cs.clone(), 20.0);
    }

    for name in ["UBP", "LPIP", "Layering"] {
        let outcome = algorithms::by_name(name).expect("paper algorithm").run(&h);
        let report = check_all(&conflict_sets, &outcome.pricing);
        assert!(report.is_arbitrage_free(), "{name} produced arbitrage");
        assert!(is_monotone(&outcome.pricing, 8));
        assert!(is_subadditive(&outcome.pricing, 8));
        // Interior-mutable swap: the broker is never declared mut.
        broker.set_pricing(outcome.pricing.clone());
        // The full table determines every other query, so it is the most
        // expensive quote.
        let full_price = broker.quote(&queries[2]).price;
        for q in &queries {
            assert!(broker.quote(q).price <= full_price + 1e-9);
        }
        // quote_batch must agree with per-query quotes under every pricing.
        for (batch, q) in broker.quote_batch(&queries).iter().zip(&queries) {
            let single = broker.quote(q);
            assert_eq!(batch.conflict_set, single.conflict_set);
            assert_eq!(batch.price, single.price);
        }
    }
}

#[test]
fn broker_builder_sells_within_budget_and_keeps_a_ledger() {
    let (db, support) = world_instance();
    // Sum(Population) conflicts with every support database that perturbs a
    // Country population, so this query is reliably priced.
    let q = Query::scan("Country").aggregate(vec![], vec![(AggFunc::Sum, Some("Population"), "s")]);
    let broker = Broker::builder(db)
        .support(support)
        .algorithm("LPIP")
        .anticipate(q.clone(), 9.0)
        .build()
        .expect("LPIP is a registered algorithm");

    let quote = broker.quote(&q);
    assert!(quote.price > 0.0);
    match broker.purchase(&q, quote.price).unwrap() {
        PurchaseOutcome::Sold { answer, .. } => assert_eq!(answer.len(), 1),
        PurchaseOutcome::Declined { .. } => panic!("exact budget must be accepted"),
    }
    match broker.purchase(&q, quote.price / 2.0).unwrap() {
        PurchaseOutcome::Declined { .. } => {}
        PurchaseOutcome::Sold { .. } => panic!("half budget must be declined"),
    }
    assert!((broker.realized_revenue() - quote.price).abs() < 1e-9);
    let ledger = broker.ledger();
    assert_eq!(ledger.len(), 1);
    assert_eq!(ledger.sales()[0].conflict_set_len, quote.conflict_set.len());

    // An unknown algorithm name fails the build instead of silently pricing
    // everything at zero.
    let (db2, support2) = world_instance();
    assert!(Broker::builder(db2)
        .support(support2)
        .algorithm("FancyPants")
        .build()
        .is_err());
}

#[test]
fn figure_pipeline_smoke_test() {
    // A miniature Figure 5 panel: hypergraph + valuations + all algorithms,
    // normalized revenue in [0, 1].
    let (db, support) = world_instance();
    let w = uniform::workload(&db, 25);
    let engine = DeltaConflictEngine::new(&db, &support);
    let base = build_hypergraph(&engine, &w.queries);
    for model in [
        ValuationModel::SampledUniform { k: 200.0 },
        ValuationModel::SampledZipf {
            a: 2.0,
            max_rank: 1000,
        },
        ValuationModel::ScaledNormal {
            k: 1.0,
            variance: 10.0,
        },
        ValuationModel::AdditiveBinomial { k: 100 },
    ] {
        let mut h = base.clone();
        assign_valuations(&mut h, &model, 5);
        let sum = bounds::sum_of_valuations(&h);
        let sub = bounds::subadditive_bound(&h, &Default::default());
        assert!(sub <= sum + 1e-6);
        for name in ["UBP", "UIP", "Layering"] {
            let out = algorithms::by_name(name).expect("paper algorithm").run(&h);
            let norm = out.revenue / sum;
            assert!((0.0..=1.0 + 1e-9).contains(&norm), "{name} -> {norm}");
        }
    }
}
